//! Crash-consistent checkpoint placement and recovery.
//!
//! [`Checkpoint`] defines the *bytes*; this
//! module defines where they live so that a crash at **any** instant leaves
//! a resumable state on disk:
//!
//! 1. the serialized stream is written to a `*.tmp` file,
//! 2. `sync_all` forces it to the device,
//! 3. an atomic `rename` publishes it as `ckpt-<iteration>.bin`,
//! 4. the **manifest** (itself updated by the same tmp+sync+rename dance)
//!    appends a `<iteration> <len> <fnv64> <file>` record.
//!
//! A crash before the rename leaves only a `*.tmp` the sweep removes; a
//! crash between rename and manifest update leaves an unlisted
//! checkpoint file the sweep removes; a torn manifest write is impossible
//! (rename is atomic) and a torn checkpoint write is caught at resume by
//! the manifest's length + checksum record *and* the payload trailer
//! inside the stream. [`CheckpointStore::resume_latest`] walks the
//! manifest newest-first and returns the first entry that verifies —
//! the "last-good" fallback the kill-and-resume harness
//! (`tests/crash_recovery.rs`) exercises at every injected kill point.
//!
//! All file operations consult the deterministic fault plan
//! (`lazydp_fault`) under this store's own operation ordinals:
//! `ckpt.write`, `ckpt.sync`, `ckpt.rename` inject I/O failures
//! (absorbed by bounded retry) and `checkpoint` is the kill point
//! between writing and publishing.

use crate::checkpoint::Checkpoint;
use lazydp_fault::checksum::fnv1a64;
use lazydp_fault::{FaultKind, InjectedKill, Site};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Why a checkpoint-store operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// A file operation failed (retryable; retries already exhausted).
    Io {
        /// The failing operation (`ckpt.write`, `manifest.read`, …).
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A file exists but does not verify (bad length, bad checksum,
    /// unparseable payload or manifest).
    Corrupt {
        /// The corrupt file.
        path: PathBuf,
        /// What failed to verify.
        reason: String,
    },
    /// The manifest lists checkpoints but none of them verified.
    NoValidCheckpoint {
        /// How many manifest entries were tried.
        tried: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { op, path, source } => {
                write!(f, "checkpoint {op} failed on {}: {source}", path.display())
            }
            CheckpointError::Corrupt { path, reason } => {
                write!(f, "checkpoint {} is corrupt: {reason}", path.display())
            }
            CheckpointError::NoValidCheckpoint { tried } => {
                write!(f, "no valid checkpoint among {tried} manifest entries")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl lazydp_fault::Retryable for CheckpointError {
    fn retryable(&self) -> bool {
        matches!(self, CheckpointError::Io { .. })
    }
}

/// One manifest record: a published checkpoint and how to verify it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ManifestEntry {
    iteration: u64,
    len: u64,
    checksum: u64,
    file: String,
}

const MANIFEST_NAME: &str = "manifest.txt";
const MANIFEST_HEADER: &str = "lazydp-manifest v1";

/// A directory of atomically-published checkpoints plus the versioned
/// manifest of known-good ones.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    entries: Vec<ManifestEntry>,
    /// This store's own operation ordinals for fault-plan decisions.
    write_ops: u64,
    sync_ops: u64,
    rename_ops: u64,
    /// Saves attempted — the `checkpoint` kill-point ordinal.
    saves: u64,
}

/// Consults the fault plan at a checkpoint I/O site: injected I/O
/// failures come back as errors (the caller retries), an injected kill
/// panics with the typed payload.
fn inject(site: Site, ordinal: u64, path: &Path) -> Result<(), CheckpointError> {
    match lazydp_fault::decide(site, ordinal) {
        None => Ok(()),
        Some(FaultKind::Kill) => std::panic::panic_any(InjectedKill { site, ordinal }),
        Some(kind) => Err(CheckpointError::Io {
            op: site.name(),
            path: path.to_path_buf(),
            source: lazydp_fault::injected_io_error(kind, site, ordinal),
        }),
    }
}

fn io_err<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(io::Error) -> CheckpointError + 'a {
    move |source| CheckpointError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory and loads its
    /// manifest.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and manifest-read failures; a
    /// malformed manifest is [`CheckpointError::Corrupt`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err("mkdir", &dir))?;
        let manifest = dir.join(MANIFEST_NAME);
        let entries = if manifest.exists() {
            let text =
                std::fs::read_to_string(&manifest).map_err(io_err("manifest.read", &manifest))?;
            parse_manifest(&text).map_err(|reason| CheckpointError::Corrupt {
                path: manifest.clone(),
                reason,
            })?
        } else {
            Vec::new()
        };
        Ok(Self {
            dir,
            entries,
            write_ops: 0,
            sync_ops: 0,
            rename_ops: 0,
            saves: 0,
        })
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Published checkpoint iterations, oldest first.
    #[must_use]
    pub fn iterations(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.iteration).collect()
    }

    /// Atomically publishes `ck`: tmp file → `sync_all` → rename →
    /// manifest append (itself tmp+sync+rename). Transient device
    /// failures at any stage are absorbed by bounded retry. Returns the
    /// published path.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures once retries are exhausted.
    ///
    /// # Panics
    ///
    /// Panics when the fault plan fires the `checkpoint` kill point —
    /// after the temp file is durable, before it is published — the
    /// window the recovery harness proves is survivable.
    pub fn save(&mut self, ck: &Checkpoint) -> Result<PathBuf, CheckpointError> {
        let save_ordinal = self.saves;
        self.saves += 1;
        let bytes = ck.to_bytes();
        let file = format!("ckpt-{:010}.bin", ck.iteration);
        let path = self.dir.join(&file);
        let tmp = self.dir.join(format!("{file}.tmp"));
        self.write_synced(&tmp, &bytes)?;
        // The crash window: the bytes are durable under the tmp name but
        // nothing references them. A kill here must resume from the
        // previous manifest entry, and the sweep must remove the tmp.
        lazydp_fault::point(Site::MidCheckpoint, save_ordinal);
        self.rename(&tmp, &path)?;
        self.entries.push(ManifestEntry {
            iteration: ck.iteration,
            len: bytes.len() as u64,
            checksum: fnv1a64(&bytes),
            file,
        });
        if let Err(e) = self.write_manifest() {
            // The checkpoint file is published but unrecorded — undo the
            // in-memory append so our state matches the disk manifest
            // (the sweep will collect the orphan file).
            self.entries.pop();
            return Err(e);
        }
        Ok(path)
    }

    /// Loads the newest checkpoint that verifies, walking the manifest
    /// backwards past any entry whose file is missing, truncated, or
    /// corrupt — the last-good fallback.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::NoValidCheckpoint`] when the manifest has
    /// entries but none verified. An empty manifest is `Ok(None)` (a
    /// fresh start, not a failure).
    pub fn resume_latest(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        if self.entries.is_empty() {
            return Ok(None);
        }
        for entry in self.entries.iter().rev() {
            let path = self.dir.join(&entry.file);
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if bytes.len() as u64 != entry.len || fnv1a64(&bytes) != entry.checksum {
                continue;
            }
            match Checkpoint::from_bytes(&bytes) {
                Ok(ck) => return Ok(Some(ck)),
                Err(_) => continue,
            }
        }
        Err(CheckpointError::NoValidCheckpoint {
            tried: self.entries.len(),
        })
    }

    /// Removes recovery debris from the checkpoint directory: `*.tmp`
    /// files (crashed mid-write) and `ckpt-*.bin` files the manifest
    /// does not list (crashed between rename and manifest update).
    /// Returns how many files were removed.
    ///
    /// # Errors
    ///
    /// Propagates the directory-listing error; per-file removal
    /// failures are skipped.
    pub fn sweep_stale(&self) -> Result<usize, CheckpointError> {
        let mut removed = 0usize;
        let listed: Vec<&str> = self.entries.iter().map(|e| e.file.as_str()).collect();
        let iter = std::fs::read_dir(&self.dir).map_err(io_err("readdir", &self.dir))?;
        for entry in iter {
            let entry = entry.map_err(io_err("readdir", &self.dir))?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let stale = name.ends_with(".tmp")
                || (name.starts_with("ckpt-")
                    && name.ends_with(".bin")
                    && !listed.contains(&name.as_str()));
            if stale && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Writes `bytes` to `path` and forces them to the device, with
    /// fault injection at the `ckpt.write` / `ckpt.sync` sites and
    /// bounded retry around the whole attempt.
    fn write_synced(&mut self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        let write_ops = &mut self.write_ops;
        let sync_ops = &mut self.sync_ops;
        lazydp_fault::with_retry(|| {
            let ord = *write_ops;
            *write_ops += 1;
            inject(Site::CkptWrite, ord, path)?;
            let mut f = File::create(path).map_err(io_err("ckpt.write", path))?;
            f.write_all(bytes).map_err(io_err("ckpt.write", path))?;
            let ord = *sync_ops;
            *sync_ops += 1;
            inject(Site::CkptSync, ord, path)?;
            f.sync_all().map_err(io_err("ckpt.sync", path))
        })
    }

    /// Atomic rename with fault injection and bounded retry.
    fn rename(&mut self, from: &Path, to: &Path) -> Result<(), CheckpointError> {
        let rename_ops = &mut self.rename_ops;
        lazydp_fault::with_retry(|| {
            let ord = *rename_ops;
            *rename_ops += 1;
            inject(Site::CkptRename, ord, to)?;
            std::fs::rename(from, to).map_err(io_err("ckpt.rename", to))
        })
    }

    /// Rewrites the manifest through its own tmp+sync+rename.
    fn write_manifest(&mut self) -> Result<(), CheckpointError> {
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for e in &self.entries {
            text.push_str(&format!(
                "{} {} {:016x} {}\n",
                e.iteration, e.len, e.checksum, e.file
            ));
        }
        let manifest = self.dir.join(MANIFEST_NAME);
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        self.write_synced(&tmp, text.as_bytes())?;
        self.rename(&tmp, &manifest)
    }
}

/// Parses the manifest text; `Err` is a human-readable reason.
fn parse_manifest(text: &str) -> Result<Vec<ManifestEntry>, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(MANIFEST_HEADER) => {}
        other => return Err(format!("bad manifest header {other:?}")),
    }
    let mut entries = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [iteration, len, checksum, file] = fields.as_slice() else {
            return Err(format!("manifest line {} malformed: {line:?}", i + 2));
        };
        entries.push(ManifestEntry {
            iteration: iteration
                .parse()
                .map_err(|e| format!("manifest line {}: bad iteration: {e}", i + 2))?,
            len: len
                .parse()
                .map_err(|e| format!("manifest line {}: bad length: {e}", i + 2))?,
            checksum: u64::from_str_radix(checksum, 16)
                .map_err(|e| format!("manifest line {}: bad checksum: {e}", i + 2))?,
            file: (*file).to_string(),
        });
    }
    Ok(entries)
}

/// Prepares a directory for a resumed run: sweeps checkpoint debris
/// (`*.tmp`, unlisted `ckpt-*.bin`) **and** stale spill files an earlier
/// crashed process left in `spill_dir`, then returns the opened store.
///
/// # Errors
///
/// As [`CheckpointStore::open`] / [`CheckpointStore::sweep_stale`];
/// spill-sweep failures are reported the same way.
pub fn open_and_sweep(
    ckpt_dir: impl Into<PathBuf>,
    spill_dir: &Path,
) -> Result<CheckpointStore, CheckpointError> {
    let store = CheckpointStore::open(ckpt_dir)?;
    store.sweep_stale()?;
    if spill_dir.exists() {
        lazydp_store::sweep_stale_spill_files(spill_dir)
            .map_err(io_err("spill.sweep", spill_dir))?;
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::ShardedHistory;
    use crate::optimizer::{LazyDpConfig, LazyDpOptimizer};
    use lazydp_dpsgd::DpConfig;
    use lazydp_fault::FaultPlan;
    use lazydp_model::{Dlrm, DlrmConfig};
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::Xoshiro256PlusPlus;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn tiny_checkpoint(iteration: u64) -> Checkpoint {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        let model = Dlrm::new(DlrmConfig::tiny(2, 16, 4), &mut rng);
        let cfg = LazyDpConfig::new(DpConfig::new(0.8, 1.0, 0.05, 8), false);
        let opt = LazyDpOptimizer::from_state(
            cfg,
            CounterNoise::new(2),
            model
                .tables
                .iter()
                .map(|t| ShardedHistory::new(t.rows(), 1))
                .collect(),
            iteration,
        );
        Checkpoint::capture(&model, &opt)
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lazydp-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn save_then_resume_round_trips() {
        let dir = fresh_dir("roundtrip");
        let mut store = CheckpointStore::open(&dir).expect("open");
        assert!(store.resume_latest().expect("empty is ok").is_none());
        store.save(&tiny_checkpoint(3)).expect("save");
        store.save(&tiny_checkpoint(6)).expect("save");
        // A reopened store sees the manifest written by the first.
        let reopened = CheckpointStore::open(&dir).expect("reopen");
        assert_eq!(reopened.iterations(), vec![3, 6]);
        let ck = reopened.resume_latest().expect("resume").expect("some");
        assert_eq!(ck.iteration, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous_entry() {
        let dir = fresh_dir("fallback");
        let mut store = CheckpointStore::open(&dir).expect("open");
        store.save(&tiny_checkpoint(3)).expect("save");
        let newest = store.save(&tiny_checkpoint(6)).expect("save");
        // Flip one byte of the newest published checkpoint.
        let mut bytes = std::fs::read(&newest).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).expect("rewrite");
        let ck = store.resume_latest().expect("resume").expect("some");
        assert_eq!(ck.iteration, 3, "must fall back past the corrupt entry");
        // Truncation is also caught (by the manifest length record).
        std::fs::write(&newest, &bytes[..mid]).expect("truncate");
        assert_eq!(
            store
                .resume_latest()
                .expect("resume")
                .expect("some")
                .iteration,
            3
        );
        // Remove both: entries exist but nothing verifies.
        std::fs::remove_file(&newest).expect("rm");
        std::fs::remove_file(dir.join("ckpt-0000000003.bin")).expect("rm");
        assert!(matches!(
            store.resume_latest(),
            Err(CheckpointError::NoValidCheckpoint { tried: 2 })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_removes_tmp_and_unlisted_files_only() {
        let dir = fresh_dir("sweep");
        let mut store = CheckpointStore::open(&dir).expect("open");
        let kept = store.save(&tiny_checkpoint(5)).expect("save");
        std::fs::write(dir.join("ckpt-0000000099.bin.tmp"), b"torn").expect("tmp");
        std::fs::write(dir.join("ckpt-0000000042.bin"), b"orphan").expect("orphan");
        // Re-open so the sweep works from the on-disk manifest.
        let store = CheckpointStore::open(&dir).expect("reopen");
        assert_eq!(store.sweep_stale().expect("sweep"), 2);
        assert!(kept.exists(), "listed checkpoint survives the sweep");
        assert!(dir.join(MANIFEST_NAME).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_on_every_site_are_absorbed() {
        let _g = lazydp_fault::exclusive();
        let dir = fresh_dir("transient");
        lazydp_fault::install(
            FaultPlan::new(5)
                .rule(Site::CkptWrite, 0, FaultKind::Transient)
                .rule(Site::CkptSync, 1, FaultKind::Transient)
                .rule(Site::CkptRename, 0, FaultKind::Transient),
        );
        let mut store = CheckpointStore::open(&dir).expect("open");
        store
            .save(&tiny_checkpoint(2))
            .expect("retries absorb all three");
        lazydp_fault::clear();
        let ck = store.resume_latest().expect("resume").expect("some");
        assert_eq!(ck.iteration, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_before_publish_resumes_from_previous_checkpoint() {
        let _g = lazydp_fault::exclusive();
        let dir = fresh_dir("kill");
        let mut store = CheckpointStore::open(&dir).expect("open");
        store.save(&tiny_checkpoint(3)).expect("save");
        // Kill the second save in the window after the tmp file is
        // durable but before the rename publishes it.
        lazydp_fault::install(FaultPlan::new(0).rule(Site::MidCheckpoint, 1, FaultKind::Kill));
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _ = store.save(&tiny_checkpoint(6));
        }));
        lazydp_fault::clear();
        let kill = unwound
            .expect_err("must die at the kill point")
            .downcast_ref::<InjectedKill>()
            .copied()
            .expect("typed payload");
        assert_eq!(kill.site, Site::MidCheckpoint);
        // A fresh process: open, sweep the debris, resume.
        let store = CheckpointStore::open(&dir).expect("reopen");
        assert_eq!(store.sweep_stale().expect("sweep"), 1, "the torn tmp");
        let ck = store.resume_latest().expect("resume").expect("some");
        assert_eq!(ck.iteration, 3, "the last-good checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
