//! Counter-based (stateless) random streams.
//!
//! LazyDP's correctness argument (paper §5.1, Fig. 7) is that delaying a
//! noise update does not change the value an embedding row has *when it is
//! next read*: the row must have received exactly the noise of iterations
//! `1..current` before the gather. To test this property **exactly**, the
//! eager DP-SGD baselines and the LazyDP optimizer must be able to draw
//! *the same* noise vector for the same `(table, row, iteration)` triple,
//! regardless of the order in which the two algorithms materialize it.
//!
//! A counter-based stream makes this trivial: the noise is a pure function
//! of `(seed, table, row, iteration, lane)`. [`CounterRng`] provides the
//! keyed mixing; [`RowNoise`] is the interface optimizers consume.

use crate::gaussian;
use crate::prng::{splitmix64_mix, Prng, SPLITMIX64_GAMMA};

/// Stateless keyed generator: `value(i) = mix(key, i)`.
///
/// Built from two rounds of the SplitMix64 finalizer over a Weyl-spread
/// counter, which gives full avalanche between nearby counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// Creates a keyed counter generator.
    #[must_use]
    pub fn new(key: u64) -> Self {
        Self { key }
    }

    /// Derives a child key from a label, for domain separation
    /// (e.g. one sub-stream per embedding table).
    #[must_use]
    pub fn derive(&self, label: u64) -> Self {
        Self {
            key: splitmix64_mix(self.key ^ label.wrapping_mul(SPLITMIX64_GAMMA)),
        }
    }

    /// The value at counter position `i`. Pure: same `(key, i)` → same bits.
    #[must_use]
    pub fn at(&self, i: u64) -> u64 {
        let x = self.key ^ i.wrapping_mul(SPLITMIX64_GAMMA);
        splitmix64_mix(splitmix64_mix(x).wrapping_add(SPLITMIX64_GAMMA))
    }

    /// A sequential [`Prng`] view starting at counter position `start`.
    #[must_use]
    pub fn stream(&self, start: u64) -> CounterStream {
        CounterStream {
            rng: *self,
            pos: start,
        }
    }
}

/// Sequential iterator view over a [`CounterRng`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterStream {
    rng: CounterRng,
    pos: u64,
}

impl Prng for CounterStream {
    fn next_u64(&mut self) -> u64 {
        let v = self.rng.at(self.pos);
        self.pos = self.pos.wrapping_add(1);
        v
    }
}

/// Source of *standard-normal* noise addressable by `(table, row, iter)`.
///
/// DP optimizers scale the returned unit noise by `σ·C/B` themselves
/// (Algorithm 1, lines 34/38), so one source serves every algorithm.
///
/// Two families of implementations exist:
///
/// * [`CounterNoise`] — pure function of the address; lets LazyDP and
///   eager DP-SGD draw identical values in different orders (used to test
///   Fig. 7's exact-equivalence claim).
/// * [`SequentialNoise`] — an ordinary PRNG stream, matching how a real
///   deployment would sample; only distributionally equivalent.
pub trait RowNoise {
    /// Fills `out` with standard-normal noise for embedding row `row` of
    /// table `table` attributed to training iteration `iter`.
    fn fill_unit(&mut self, table: u32, row: u64, iter: u64, out: &mut [f32]);

    /// Fills `out` with noise for a *dense* (non-embedding) parameter
    /// region `param` at iteration `iter`, element offset `offset`.
    ///
    /// Default implementation reuses the row addressing with a reserved
    /// table id; implementations may override for different layouts.
    fn fill_unit_dense(&mut self, param: u32, iter: u64, offset: u64, out: &mut [f32]) {
        self.fill_unit(u32::MAX - param, offset, iter, out);
    }

    /// Whether the noise is a pure function of the `(table, row, iter)`
    /// address (and a seed). Only addressable sources may be sampled
    /// in parallel: the parallel kernels clone the source per chunk, and
    /// clones of a *stateful* stream would replay identical values in
    /// every chunk — correlated noise that breaks the DP guarantee.
    /// Optimizers fall back to sequential sampling when this is `false`.
    fn addressable(&self) -> bool {
        false
    }
}

/// Counter-based [`RowNoise`]: noise is a pure function of
/// `(seed, table, row, iter)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterNoise {
    root: CounterRng,
}

impl CounterNoise {
    /// Creates a counter-based noise source from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            root: CounterRng::new(splitmix64_mix(seed ^ 0x6c62_272e_07bb_0142)),
        }
    }

    /// The deterministic sub-stream for one `(table, row, iter)` address.
    #[must_use]
    pub fn stream_for(&self, table: u32, row: u64, iter: u64) -> CounterStream {
        self.root
            .derive(u64::from(table))
            .derive(row)
            .derive(iter)
            .stream(0)
    }
}

impl RowNoise for CounterNoise {
    fn fill_unit(&mut self, table: u32, row: u64, iter: u64, out: &mut [f32]) {
        let mut stream = self.stream_for(table, row, iter);
        gaussian::fill_standard_normal(&mut stream, out);
    }

    fn addressable(&self) -> bool {
        true
    }
}

/// Sequential-PRNG [`RowNoise`] (deployment-style sampling).
///
/// The address arguments are ignored; values come off one stream in call
/// order. Use [`CounterNoise`] when exact cross-algorithm reproducibility
/// is required.
#[derive(Debug, Clone)]
pub struct SequentialNoise<R> {
    rng: R,
}

impl<R: Prng> SequentialNoise<R> {
    /// Wraps a PRNG as a noise source.
    pub fn new(rng: R) -> Self {
        Self { rng }
    }

    /// Consumes the wrapper, returning the inner generator.
    pub fn into_inner(self) -> R {
        self.rng
    }
}

impl<R: Prng> RowNoise for SequentialNoise<R> {
    fn fill_unit(&mut self, _table: u32, _row: u64, _iter: u64, out: &mut [f32]) {
        gaussian::fill_standard_normal(&mut self.rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn counter_is_pure_and_address_sensitive() {
        let rng = CounterRng::new(42);
        assert_eq!(rng.at(7), rng.at(7));
        assert_ne!(rng.at(7), rng.at(8));
        assert_ne!(CounterRng::new(1).at(0), CounterRng::new(2).at(0));
        assert_ne!(rng.derive(1).at(0), rng.derive(2).at(0));
    }

    #[test]
    fn counter_stream_matches_at() {
        let rng = CounterRng::new(9);
        let mut s = rng.stream(100);
        for i in 100..110 {
            assert_eq!(s.next_u64(), rng.at(i));
        }
    }

    #[test]
    fn counter_noise_identical_across_instances_and_call_order() {
        let mut a = CounterNoise::new(5);
        let mut b = CounterNoise::new(5);
        let mut va = vec![0.0f32; 16];
        let mut vb = vec![0.0f32; 16];
        // Different interleavings must not matter.
        a.fill_unit(0, 10, 3, &mut va);
        b.fill_unit(1, 99, 7, &mut vb); // unrelated draw first
        b.fill_unit(0, 10, 3, &mut vb);
        assert_eq!(va, vb);
    }

    #[test]
    fn counter_noise_distinguishes_all_address_parts() {
        let mut n = CounterNoise::new(5);
        let mut base = vec![0.0f32; 8];
        let mut other = vec![0.0f32; 8];
        n.fill_unit(0, 1, 1, &mut base);
        n.fill_unit(1, 1, 1, &mut other);
        assert_ne!(base, other);
        n.fill_unit(0, 2, 1, &mut other);
        assert_ne!(base, other);
        n.fill_unit(0, 1, 2, &mut other);
        assert_ne!(base, other);
    }

    #[test]
    fn counter_noise_is_standard_normal() {
        let mut n = CounterNoise::new(2024);
        let mut all = Vec::with_capacity(40_000);
        let mut buf = vec![0.0f32; 40];
        for row in 0..1000u64 {
            n.fill_unit(0, row, 1, &mut buf);
            all.extend(buf.iter().map(|&x| f64::from(x)));
        }
        let (mean, var) = stats::mean_var(&all);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
        let ks = stats::ks_statistic_normal(&mut all, 0.0, 1.0);
        assert!(ks < stats::ks_critical(all.len(), 0.001), "ks {ks}");
    }

    #[test]
    fn dense_noise_does_not_collide_with_row_noise() {
        let mut n = CounterNoise::new(5);
        let mut a = vec![0.0f32; 8];
        let mut b = vec![0.0f32; 8];
        n.fill_unit(0, 0, 1, &mut a);
        n.fill_unit_dense(0, 1, 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn addressability_flags() {
        use crate::prng::Xoshiro256PlusPlus;
        assert!(CounterNoise::new(1).addressable());
        assert!(!SequentialNoise::new(Xoshiro256PlusPlus::seed_from(1)).addressable());
    }

    #[test]
    fn sequential_noise_draws_in_order() {
        use crate::prng::Xoshiro256PlusPlus;
        let mut s = SequentialNoise::new(Xoshiro256PlusPlus::seed_from(1));
        let mut a = vec![0.0f32; 4];
        let mut b = vec![0.0f32; 4];
        s.fill_unit(0, 0, 0, &mut a);
        s.fill_unit(0, 0, 0, &mut b);
        assert_ne!(a, b, "sequential source must advance");
    }
}
