//! Multi-threaded Gaussian sampling.
//!
//! The paper's optimized baseline uses Intel TBB/OpenMP to spread the
//! Box–Muller kernel across the Xeon's 20 cores (§6: "thread-level
//! parallelism (multi-threading), achieving 13.4× higher performance
//! than the built-in PyTorch implementations"). This module is the Rust
//! equivalent: thin wrappers over the [`lazydp_exec::Executor`], where
//! each fixed-size chunk draws from an independent counter-derived
//! stream. Chunk boundaries depend only on the buffer length — never on
//! the thread count — so the output is a pure function of the seed:
//! bitwise identical for any number of workers (DESIGN.md invariant #4).

use crate::counter::CounterRng;
use crate::gaussian;
use lazydp_exec::Executor;

/// Elements per chunk-addressed sub-stream. Fixed (never derived from
/// the thread count) so the output is thread-count independent; large
/// enough that a chunk amortizes a worker dispatch.
const FILL_CHUNK: usize = 8192;

/// Fills `out` with standard-normal samples using `threads` worker
/// threads. Chunk `i` is always generated from the sub-stream
/// `derive(i)`, so the output depends only on `seed` — the same bits
/// for any `threads`.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn par_fill_standard_normal(seed: u64, out: &mut [f32], threads: usize) {
    let root = CounterRng::new(seed ^ 0x9d39_247e_3377_6d41);
    Executor::new(threads).par_for(out, FILL_CHUNK, |i, piece| {
        let mut stream = root.derive(i as u64).stream(0);
        gaussian::fill_standard_normal(&mut stream, piece);
    });
}

/// Parallel version of the fused noisy accumulate: `acc[j] += scale·n_j`
/// with `n ~ N(0, 1)`, chunked as in [`par_fill_standard_normal`] (and
/// equally thread-count independent).
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn par_accumulate_noise(seed: u64, scale: f32, acc: &mut [f32], threads: usize) {
    let root = CounterRng::new(seed ^ 0x243f_6a88_85a3_08d3);
    Executor::new(threads).par_for(acc, FILL_CHUNK, |i, piece| {
        let mut stream = root.derive(i as u64).stream(0);
        let mut buf = vec![0.0f32; piece.len()];
        gaussian::fill_standard_normal(&mut stream, &mut buf);
        for (a, &n) in piece.iter_mut().zip(buf.iter()) {
            *a += scale * n;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn deterministic_given_seed_and_threads() {
        let mut a = vec![0.0f32; 10_000];
        let mut b = vec![0.0f32; 10_000];
        par_fill_standard_normal(42, &mut a, 4);
        par_fill_standard_normal(42, &mut b, 4);
        assert_eq!(a, b);
        let mut c = vec![0.0f32; 10_000];
        par_fill_standard_normal(43, &mut c, 4);
        assert_ne!(a, c, "seed-sensitive");
    }

    #[test]
    fn output_is_bitwise_identical_across_thread_counts() {
        let mut base = vec![0.0f32; 50_000];
        par_fill_standard_normal(9, &mut base, 1);
        for threads in [2usize, 3, 5, 16] {
            let mut buf = vec![0.0f32; 50_000];
            par_fill_standard_normal(9, &mut buf, threads);
            assert_eq!(base, buf, "thread count {threads} changed the fill");
        }
        let mut acc_base = vec![1.0f32; 50_000];
        par_accumulate_noise(9, 0.5, &mut acc_base, 1);
        for threads in [2usize, 3, 5, 16] {
            let mut acc = vec![1.0f32; 50_000];
            par_accumulate_noise(9, 0.5, &mut acc, threads);
            assert_eq!(
                acc_base, acc,
                "thread count {threads} changed the accumulate"
            );
        }
    }

    #[test]
    fn chunks_are_independent_standard_normals() {
        let mut buf = vec![0.0f32; 200_000];
        par_fill_standard_normal(7, &mut buf, 4);
        let mut xs: Vec<f64> = buf.iter().map(|&x| f64::from(x)).collect();
        let (mean, var) = stats::mean_var(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        let ks = stats::ks_statistic_normal(&mut xs, 0.0, 1.0);
        assert!(ks < stats::ks_critical(xs.len(), 0.001), "ks {ks}");
        // Cross-chunk correlation check: chunk boundaries must not
        // repeat values.
        assert_ne!(buf[FILL_CHUNK - 1], buf[FILL_CHUNK]);
    }

    #[test]
    fn small_buffers_take_sequential_path() {
        let mut a = vec![0.0f32; 100];
        par_fill_standard_normal(1, &mut a, 8);
        assert!(a.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn accumulate_adds_scaled_noise_deterministically() {
        let mut acc1 = vec![1.0f32; 9_000];
        let mut acc2 = vec![1.0f32; 9_000];
        par_accumulate_noise(5, 0.5, &mut acc1, 3);
        par_accumulate_noise(5, 0.5, &mut acc2, 3);
        assert_eq!(acc1, acc2);
        let moved = acc1.iter().filter(|&&x| (x - 1.0).abs() > 1e-9).count();
        assert!(moved > 8_000, "noise must land nearly everywhere");
        let xs: Vec<f64> = acc1.iter().map(|&x| f64::from(x) - 1.0).collect();
        let (_, var) = stats::mean_var(&xs);
        assert!((var - 0.25).abs() < 0.02, "var {var} ≈ scale²");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mut a = vec![0.0f32; 8];
        par_fill_standard_normal(1, &mut a, 0);
    }
}
