//! Core deterministic pseudo-random generators.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator. Used for seeding and
//!   as the finalizer/mixer of the counter-based streams in
//!   [`crate::counter`].
//! * [`Xoshiro256PlusPlus`] — the main sequential stream generator
//!   (Blackman & Vigna). Fast, equidistributed, and with a `jump()`
//!   function for cheap independent parallel streams.
//!
//! Both implement the crate-local [`Prng`] trait as well as
//! [`rand::RngCore`], so they compose with the `rand` ecosystem where
//! convenient (e.g. `rand::seq` shuffles in the data loader).

/// Converts 64 uniform bits to a uniform `f64` in `[0, 1)` using the top
/// 53 bits — the exact conversion behind [`Prng::next_f64`], exposed so
/// batched consumers (the single-pass Gaussian fills) produce the same
/// value from the same bits.
#[inline]
#[must_use]
pub fn u64_to_unit_f64(bits: u64) -> f64 {
    // 2^-53 scaling of the high 53 bits.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts 64 uniform bits to a uniform `f64` in `(0, 1]` — the exact
/// conversion behind [`Prng::next_f64_open`].
#[inline]
#[must_use]
pub fn u64_to_unit_f64_open(bits: u64) -> f64 {
    ((bits >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Minimal uniform-generator interface used throughout the workspace.
///
/// The methods have deterministic, platform-independent output for a given
/// seed, which the reproduction relies on for its equivalence tests.
pub trait Prng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `out` with the next `out.len()` raw draws, in stream order.
    /// The batched form of [`next_u64`](Self::next_u64): after the call
    /// the stream position has advanced by exactly `out.len()`.
    fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next_u64();
        }
    }

    /// Returns a uniform `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits so every representable value is equally likely.
    fn next_f64(&mut self) -> f64 {
        u64_to_unit_f64(self.next_u64())
    }

    /// Returns a uniform `f64` in the half-open interval `(0, 1]`.
    ///
    /// This is the form Box–Muller needs for its logarithm argument
    /// (`ln 0` must never occur).
    fn next_f64_open(&mut self) -> f64 {
        u64_to_unit_f64_open(self.next_u64())
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p`.
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// The SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
///
/// Exposed publicly because the counter-based streams of
/// [`crate::counter`] are built from it.
#[inline]
#[must_use]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Weyl-sequence increment of SplitMix64 (the golden ratio in 64 bits).
pub const SPLITMIX64_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64: a tiny, fast, statistically sound 64-bit generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256PlusPlus`] and to derive independent sub-seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Prng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(SPLITMIX64_GAMMA);
        splitmix64_mix(self.state)
    }
}

/// xoshiro256++ (Blackman & Vigna, 2019): the workspace's main stream PRNG.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush. The
/// [`jump`](Self::jump) method advances the stream by 2¹²⁸ steps, giving
/// cheap non-overlapping streams for parallel noise-sampling kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator by expanding `seed` through SplitMix64, as
    /// recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state (probability 2^-256 from SplitMix64) is the
        // one invalid state; nudge it if it ever occurs.
        if s == [0, 0, 0, 0] {
            s[0] = SPLITMIX64_GAMMA;
        }
        Self { s }
    }

    /// Creates a generator from raw state words.
    ///
    /// # Panics
    ///
    /// Panics if all four words are zero (the invalid xoshiro state).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256++ state must be nonzero");
        Self { s }
    }

    /// Advances the stream by 2¹²⁸ steps.
    ///
    /// Calling `jump` k times on clones of one generator yields k
    /// non-overlapping subsequences, used to parallelize noise sampling
    /// across worker threads without correlation.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Returns a copy of the current stream and jumps `self` 2¹²⁸ steps
    /// ahead, so successive calls hand out non-overlapping streams.
    #[must_use]
    pub fn split_off(&mut self) -> Self {
        let child = *self;
        self.jump();
        child
    }
}

impl Prng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl rand::RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (Prng::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        Prng::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = Prng::next_u64(self).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6_457_827_717_110_365_317,
                3_203_168_211_198_807_973,
                9_817_491_932_198_370_423
            ]
        );
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256PlusPlus::seed_from(7);
        let mut b = Xoshiro256PlusPlus::seed_from(7);
        let mut c = Xoshiro256PlusPlus::seed_from(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = Xoshiro256PlusPlus::seed_from(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
            let z = rng.next_f32();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let bound = 10u64;
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should get ~10_000 ± 5σ (σ ≈ 95).
            assert!(
                (9_400..=10_600).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn jump_streams_do_not_overlap_early() {
        let mut base = Xoshiro256PlusPlus::seed_from(3);
        let mut jumped = base;
        jumped.jump();
        let a: Vec<u64> = (0..256).map(|_| base.next_u64()).collect();
        let b: Vec<u64> = (0..256).map(|_| jumped.next_u64()).collect();
        // Statistically impossible to collide on any aligned window.
        assert_ne!(a, b);
        let set: std::collections::HashSet<u64> = a.iter().copied().collect();
        let overlap = b.iter().filter(|x| set.contains(x)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = Xoshiro256PlusPlus::seed_from(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn rngcore_fill_bytes_matches_next_u64() {
        use rand::RngCore;
        let mut a = Xoshiro256PlusPlus::seed_from(21);
        let mut b = Xoshiro256PlusPlus::seed_from(21);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let w0 = Prng::next_u64(&mut b).to_le_bytes();
        let w1 = Prng::next_u64(&mut b).to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..], &w1);
    }
}
