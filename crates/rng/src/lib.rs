//! Deterministic random-number substrate for the LazyDP reproduction.
//!
//! The LazyDP paper (ASPLOS 2024) identifies Gaussian **noise sampling** as
//! one of the two fundamental bottlenecks of DP-SGD training for
//! recommendation models: PyTorch's `torch.normal()` is a Box–Muller
//! implementation that executes ~101 AVX compute instructions per loaded
//! vector (paper §4.3, Fig. 6). This crate provides:
//!
//! * [`SplitMix64`] and [`Xoshiro256PlusPlus`]: small, fast, well-tested
//!   deterministic PRNGs (the latter is the workhorse stream generator).
//! * [`counter`]: *counter-based* (stateless) streams, so that the noise
//!   destined for `(table, row, iteration)` is a pure function of the seed.
//!   This is what lets the test suite prove that LazyDP's deferred noise
//!   updates reconstruct exactly the embedding values that eager DP-SGD
//!   would have produced (paper Fig. 7).
//! * [`gaussian`]: Box–Muller sampling (the paper's noise-sampling kernel),
//!   including the instruction-count constants used by the calibrated
//!   performance model in `lazydp-sysmodel`.
//! * [`subsample`]: Poisson subsampling and fixed-size sampling used by the
//!   DP data loader (Opacus-style Poisson sampler, paper Fig. 9).
//! * [`stats`]: a small statistical test kit (moments, normal CDF,
//!   Kolmogorov–Smirnov) used to validate aggregated noise sampling
//!   (paper Theorem 5.1) distributionally.
//!
//! # Example
//!
//! ```
//! use lazydp_rng::{Prng, Xoshiro256PlusPlus, gaussian};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(42);
//! let mut buf = vec![0.0f32; 1024];
//! gaussian::fill_standard_normal(&mut rng, &mut buf);
//! let mean: f32 = buf.iter().sum::<f32>() / buf.len() as f32;
//! assert!(mean.abs() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod gaussian;
pub mod parallel;
pub mod prng;
pub mod stats;
pub mod subsample;

pub use counter::{CounterRng, CounterStream, RowNoise, SequentialNoise};
pub use gaussian::{box_muller, fill_standard_normal, GaussianSampler};
pub use parallel::{par_accumulate_noise, par_fill_standard_normal};
pub use prng::{Prng, SplitMix64, Xoshiro256PlusPlus};
pub use subsample::{poisson_sample, sample_without_replacement};
