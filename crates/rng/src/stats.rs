//! Statistical test kit used to validate noise distributions.
//!
//! LazyDP's aggregated noise sampling (ANS, paper Theorem 5.1) replaces a
//! sum of `n` Gaussian draws by a single draw with `n×` the variance. That
//! replacement is *distributional*, not pointwise, so the test suite
//! verifies it with moment checks and one-sample Kolmogorov–Smirnov tests
//! against the normal CDF. All routines are plain `f64` and deterministic.

/// Sample mean and (population) variance of `xs`.
///
/// Returns `(0.0, 0.0)` for an empty slice.
#[must_use]
pub fn mean_var(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mut total = 0.0f64;
    for &x in xs {
        total += x;
    }
    let mean = total / n;
    let mut sq = 0.0f64;
    for &x in xs {
        sq += (x - mean) * (x - mean);
    }
    (mean, sq / n)
}

/// Sample skewness (third standardized moment). Zero for symmetric data.
#[must_use]
pub fn skewness(xs: &[f64]) -> f64 {
    let (mean, var) = mean_var(xs);
    if var <= 0.0 || xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mut m3 = 0.0f64;
    for &x in xs {
        m3 += (x - mean).powi(3);
    }
    m3 / n / var.powf(1.5)
}

/// Excess kurtosis (fourth standardized moment minus 3). Zero for a
/// normal distribution.
#[must_use]
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    let (mean, var) = mean_var(xs);
    if var <= 0.0 || xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mut m4 = 0.0f64;
    for &x in xs {
        m4 += (x - mean).powi(4);
    }
    m4 / n / (var * var) - 3.0
}

/// The error function `erf(x)`, via the Abramowitz & Stegun 7.1.26
/// rational approximation (|error| ≤ 1.5e-7, ample for KS testing).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// CDF of the normal distribution `N(mean, std²)` at `x`.
///
/// # Panics
///
/// Panics if `std <= 0`.
#[must_use]
pub fn normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    assert!(std > 0.0, "std must be positive");
    0.5 * (1.0 + erf((x - mean) / (std * std::f64::consts::SQRT_2)))
}

/// One-sample Kolmogorov–Smirnov statistic of `xs` against
/// `N(mean, std²)`. Sorts `xs` in place.
///
/// # Panics
///
/// Panics if `xs` is empty, contains NaN, or `std <= 0`.
#[must_use]
pub fn ks_statistic_normal(xs: &mut [f64], mean: f64, std: f64) -> f64 {
    assert!(!xs.is_empty(), "ks test needs data");
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in KS input"));
    let n = xs.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let cdf = normal_cdf(x, mean, std);
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        d = d.max((cdf - lo).abs()).max((hi - cdf).abs());
    }
    d
}

/// Approximate KS critical value at significance `alpha` for sample size
/// `n` (asymptotic formula `c(α)·√(1/n)`), valid for `n ≳ 35`.
///
/// Supported `alpha`: 0.1, 0.05, 0.01, 0.001 (others fall back to 0.001,
/// i.e. the most permissive threshold in this set is *not* silently
/// chosen — the strictest is).
#[must_use]
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    let c = if (alpha - 0.1).abs() < 1e-12 {
        1.224
    } else if (alpha - 0.05).abs() < 1e-12 {
        1.358
    } else if (alpha - 0.01).abs() < 1e-12 {
        1.628
    } else {
        1.949 // alpha = 0.001
    };
    c / (n as f64).sqrt()
}

/// Two-sample mean z-score: how many standard errors apart the means of
/// `a` and `b` are. Used for quick A/B equivalence checks between noise
/// paths.
#[must_use]
pub fn mean_z_score(a: &[f64], b: &[f64]) -> f64 {
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    let se = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    if se == 0.0 {
        0.0
    } else {
        (ma - mb) / se
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::{Prng, Xoshiro256PlusPlus};

    #[test]
    fn mean_var_basics() {
        let (m, v) = mean_var(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((v - 1.25).abs() < 1e-12);
        assert_eq!(mean_var(&[]), (0.0, 0.0));
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from tables (A&S): erf(0)=0, erf(1)=0.8427008,
        // erf(2)=0.9953223, erf(-1)=-erf(1).
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-5);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_symmetry_and_tails() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96, 0.0, 1.0) - 0.975).abs() < 1e-3);
        assert!(normal_cdf(-8.0, 0.0, 1.0) < 1e-9);
        assert!(normal_cdf(8.0, 0.0, 1.0) > 1.0 - 1e-9);
        // Location/scale shift.
        assert!((normal_cdf(5.0, 5.0, 3.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ks_accepts_uniform_transformed_normals_rejects_shifted() {
        let mut rng = Xoshiro256PlusPlus::seed_from(17);
        let mut xs: Vec<f64> = Vec::with_capacity(20_000);
        let mut buf = vec![0.0f32; 20_000];
        crate::gaussian::fill_standard_normal(&mut rng, &mut buf);
        xs.extend(buf.iter().map(|&x| f64::from(x)));
        let mut copy = xs.clone();
        let d_ok = ks_statistic_normal(&mut copy, 0.0, 1.0);
        assert!(d_ok < ks_critical(xs.len(), 0.001), "d_ok {d_ok}");
        let mut shifted: Vec<f64> = xs.iter().map(|x| x + 0.15).collect();
        let d_bad = ks_statistic_normal(&mut shifted, 0.0, 1.0);
        assert!(d_bad > ks_critical(xs.len(), 0.001), "d_bad {d_bad}");
    }

    #[test]
    fn skew_kurtosis_of_uniform() {
        // Uniform on [0,1): skewness 0, excess kurtosis -1.2.
        let mut rng = Xoshiro256PlusPlus::seed_from(23);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.next_f64()).collect();
        assert!(skewness(&xs).abs() < 0.03);
        assert!((excess_kurtosis(&xs) + 1.2).abs() < 0.05);
    }

    #[test]
    fn mean_z_score_detects_shift() {
        let a: Vec<f64> = (0..10_000).map(|i| f64::from(i % 7)).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        assert!(mean_z_score(&a, &a).abs() < 1e-9);
        assert!(mean_z_score(&a, &b).abs() > 10.0);
    }

    #[test]
    fn ks_critical_decreases_with_n() {
        assert!(ks_critical(100, 0.05) > ks_critical(10_000, 0.05));
        assert!(ks_critical(1000, 0.1) < ks_critical(1000, 0.001));
    }
}
