//! Mini-batch subsampling primitives for DP training.
//!
//! DP-SGD's privacy analysis assumes **Poisson sampling**: each training
//! example is included in the batch independently with probability
//! `q = B / N` (Opacus' `DPDataLoader`, which the paper's LazyDP data
//! loader wraps — Fig. 9(b) "Poisson sampler"). This module provides that
//! sampler plus fixed-size sampling without replacement for non-private
//! baselines.

use crate::prng::Prng;

/// Poisson-samples indices from `0..n`: each index is included
/// independently with probability `q`.
///
/// The expected batch size is `n·q`; the realized size varies, which is
/// exactly what the RDP accountant of `lazydp-privacy` assumes.
///
/// # Panics
///
/// Panics if `q` is not within `[0, 1]`.
pub fn poisson_sample<R: Prng>(rng: &mut R, n: usize, q: f64) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&q),
        "sampling rate must be in [0,1], got {q}"
    );
    if q == 0.0 {
        return Vec::new();
    }
    if q == 1.0 {
        return (0..n).collect();
    }
    // Geometric skipping: jump directly between successes. For inclusion
    // probability q the gap G (number of failures before the next
    // success) is geometric: G = floor(ln U / ln(1-q)). This touches only
    // O(n·q) random numbers instead of n.
    let ln_fail = (1.0 - q).ln();
    let mut out = Vec::with_capacity((n as f64 * q * 1.2) as usize + 4);
    let mut i = 0usize;
    loop {
        let u = rng.next_f64_open();
        let gap = (u.ln() / ln_fail).floor();
        if !gap.is_finite() || gap >= (n - i) as f64 {
            break;
        }
        i += gap as usize;
        out.push(i);
        i += 1;
        if i >= n {
            break;
        }
    }
    out
}

/// Samples `k` distinct indices from `0..n` (partial Fisher–Yates),
/// returned in random order.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Prng>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    // Sparse Fisher-Yates via a swap map: O(k) memory. A BTreeMap keeps
    // the routine free of unordered containers (it is point-lookup only,
    // but the determinism contract bans HashMap outright).
    use std::collections::BTreeMap;
    let mut swaps: BTreeMap<usize, usize> = BTreeMap::new();
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = i + rng.next_below((n - i) as u64) as usize;
        let vi = *swaps.get(&i).unwrap_or(&i);
        let vj = *swaps.get(&j).unwrap_or(&j);
        out.push(vj);
        swaps.insert(j, vi);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256PlusPlus;

    #[test]
    fn poisson_sample_expected_size_and_sorted_unique() {
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        let n = 100_000;
        let q = 0.02;
        let mut total = 0usize;
        let trials = 50;
        for _ in 0..trials {
            let s = poisson_sample(&mut rng, n, q);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert!(s.iter().all(|&i| i < n));
            total += s.len();
        }
        let mean = total as f64 / trials as f64;
        let expect = n as f64 * q; // 2000
                                   // 50-trial mean: sd ≈ sqrt(2000/50) ≈ 6.3; allow 6σ.
        assert!((mean - expect).abs() < 40.0, "mean {mean} vs {expect}");
    }

    #[test]
    fn poisson_sample_edge_rates() {
        let mut rng = Xoshiro256PlusPlus::seed_from(2);
        assert!(poisson_sample(&mut rng, 100, 0.0).is_empty());
        assert_eq!(poisson_sample(&mut rng, 5, 1.0), vec![0, 1, 2, 3, 4]);
        assert!(poisson_sample(&mut rng, 0, 0.5).is_empty());
    }

    #[test]
    fn poisson_inclusion_probability_is_uniform() {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        let n = 200;
        let q = 0.3;
        let mut counts = vec![0usize; n];
        let trials = 20_000;
        for _ in 0..trials {
            for i in poisson_sample(&mut rng, n, q) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / trials as f64;
            // sd of p-hat = sqrt(0.3*0.7/20000) ≈ 0.0032; allow 5σ.
            assert!((p - q).abs() < 0.017, "index {i}: p {p}");
        }
    }

    #[test]
    fn without_replacement_distinct_and_in_range() {
        let mut rng = Xoshiro256PlusPlus::seed_from(4);
        for _ in 0..200 {
            let s = sample_without_replacement(&mut rng, 50, 20);
            assert_eq!(s.len(), 20);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), 20, "all distinct");
            assert!(s.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn without_replacement_full_draw_is_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let mut s = sample_without_replacement(&mut rng, 10, 10);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn without_replacement_is_uniform_over_items() {
        let mut rng = Xoshiro256PlusPlus::seed_from(6);
        let n = 20;
        let k = 5;
        let mut counts = vec![0usize; n];
        let trials = 40_000;
        for _ in 0..trials {
            for i in sample_without_replacement(&mut rng, n, k) {
                counts[i] += 1;
            }
        }
        let expect = trials * k / n; // 10_000
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < 500.0,
                "item {i}: count {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn without_replacement_rejects_oversample() {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        let _ = sample_without_replacement(&mut rng, 3, 4);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn poisson_rejects_bad_rate() {
        let mut rng = Xoshiro256PlusPlus::seed_from(8);
        let _ = poisson_sample(&mut rng, 10, 1.5);
    }
}
