//! Box–Muller Gaussian sampling — the paper's noise-sampling kernel.
//!
//! PyTorch's `torch.normal()` (the kernel the paper characterizes in §4.3)
//! is a Box–Muller transform: per generated vector it executes an AVX
//! load, ~101 AVX trigonometric/logarithmic/other compute instructions,
//! and an AVX store, making it strongly *compute-bound* (Fig. 6: 215
//! GFLOPS effective, 81% of peak). This module implements the same
//! transform in scalar Rust and exports the instruction-count constants
//! that `lazydp-sysmodel` uses to model the kernel at paper scale.

use crate::prng::Prng;

/// AVX compute instructions Box–Muller spends per 8-wide vector of
/// outputs, as measured by the paper (§4.3: "101 AVX compute
/// instructions for trigonometric/logarithmic/other operations").
pub const BOX_MULLER_AVX_OPS_PER_VECTOR: u32 = 101;

/// Lanes per AVX vector for f32 (AVX2: 256-bit / 32-bit).
pub const AVX_F32_LANES: u32 = 8;

/// Compute cost of the *noisy gradient update* stream kernel per loaded
/// element: one multiply by the learning rate and one add into the weight
/// (§4.3: "requiring only two computations for each loaded data element").
pub const UPDATE_OPS_PER_ELEMENT: u32 = 2;

/// The Box–Muller transform: maps two uniforms to two independent
/// standard-normal samples.
///
/// `u1` must lie in `(0, 1]` (the logarithm argument) and `u2` in
/// `[0, 1)`. Use [`Prng::next_f64_open`] / [`Prng::next_f64`].
///
/// # Panics
///
/// Debug-asserts the input ranges.
#[inline]
#[must_use]
pub fn box_muller(u1: f64, u2: f64) -> (f64, f64) {
    debug_assert!(u1 > 0.0 && u1 <= 1.0, "u1 out of (0,1]: {u1}");
    debug_assert!((0.0..1.0).contains(&u2), "u2 out of [0,1): {u2}");
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Box–Muller pairs converted per batched-uniform refill of
/// [`fill_mapped`] (64 raw `u64` draws per refill).
const FILL_BATCH_PAIRS: usize = 32;

/// The single-pass fill kernel shared by every Gaussian fill: draws
/// uniforms in batches of `2 × FILL_BATCH_PAIRS` raw `u64`s
/// ([`Prng::fill_u64`]), converts each pair through Box–Muller, and
/// applies `f` to each `f32` sample as it is stored — so an affine
/// output transform (mean/std) costs no second sweep over `out`.
///
/// Uniform consumption is *identical* to the historical two-pass
/// implementation: `2 * ceil(out.len() / 2)` draws in the same order,
/// converted by the same [`u64_to_unit_f64`]/[`u64_to_unit_f64_open`]
/// mapping — the stream position and every produced bit match it
/// exactly (pinned by `single_pass_fill_is_bitwise_the_two_pass_fill`).
///
/// [`u64_to_unit_f64`]: crate::prng::u64_to_unit_f64
/// [`u64_to_unit_f64_open`]: crate::prng::u64_to_unit_f64_open
#[inline]
fn fill_mapped<R: Prng>(rng: &mut R, out: &mut [f32], f: impl Fn(f32) -> f32) {
    use crate::prng::{u64_to_unit_f64, u64_to_unit_f64_open};
    let mut uniforms = [0u64; 2 * FILL_BATCH_PAIRS];
    let mut blocks = out.chunks_exact_mut(2 * FILL_BATCH_PAIRS);
    for block in &mut blocks {
        rng.fill_u64(&mut uniforms);
        for (pair, u) in block.chunks_exact_mut(2).zip(uniforms.chunks_exact(2)) {
            let (z0, z1) = box_muller(u64_to_unit_f64_open(u[0]), u64_to_unit_f64(u[1]));
            pair[0] = f(z0 as f32);
            pair[1] = f(z1 as f32);
        }
    }
    let rem = blocks.into_remainder();
    let mut pairs = rem.chunks_exact_mut(2);
    for pair in &mut pairs {
        let (z0, z1) = box_muller(rng.next_f64_open(), rng.next_f64());
        pair[0] = f(z0 as f32);
        pair[1] = f(z1 as f32);
    }
    if let Some(last) = pairs.into_remainder().first_mut() {
        let (z0, _z1) = box_muller(rng.next_f64_open(), rng.next_f64());
        *last = f(z0 as f32);
    }
}

/// Fills `out` with independent standard-normal `f32` samples using
/// Box–Muller over the supplied uniform generator, drawing uniforms in
/// batches (see `fill_mapped`).
///
/// Consumes exactly `2 * ceil(out.len() / 2)` uniforms, so the stream
/// position after the call is a deterministic function of `out.len()` —
/// a property the counter-based noise sources rely on.
pub fn fill_standard_normal<R: Prng>(rng: &mut R, out: &mut [f32]) {
    fill_mapped(rng, out, |z| z);
}

/// Number of Gaussian samples needed to noise a tensor of `elements`
/// elements — identical for all eager DP-SGD variants (every element of
/// every table gets one sample per iteration, paper §4.1).
#[inline]
#[must_use]
pub fn samples_for_elements(elements: u64) -> u64 {
    elements
}

/// A configured Gaussian sampler `N(mean, std²)`.
///
/// # Example
///
/// ```
/// use lazydp_rng::{GaussianSampler, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from(1);
/// let sampler = GaussianSampler::new(0.0, 2.0);
/// let mut noise = vec![0.0f32; 512];
/// sampler.fill(&mut rng, &mut noise);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianSampler {
    mean: f32,
    std: f32,
}

impl GaussianSampler {
    /// Creates a sampler with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    #[must_use]
    pub fn new(mean: f32, std: f32) -> Self {
        assert!(
            std.is_finite() && std >= 0.0,
            "std must be finite and >= 0, got {std}"
        );
        Self { mean, std }
    }

    /// Standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// The configured mean.
    #[must_use]
    pub fn mean(&self) -> f32 {
        self.mean
    }

    /// The configured standard deviation.
    #[must_use]
    pub fn std(&self) -> f32 {
        self.std
    }

    /// Fills `out` with samples in a single pass: the `mean + std·z`
    /// affine is folded into the Box–Muller conversion loop instead of a
    /// second sweep over `out`. Bitwise identical to the historical
    /// two-pass implementation (`fill_standard_normal` followed by an
    /// affine sweep), including the identity short-circuit for
    /// `N(0, 1)`, and consumes the same uniforms in the same order.
    pub fn fill<R: Prng>(&self, rng: &mut R, out: &mut [f32]) {
        if self.mean == 0.0 && self.std == 1.0 {
            // The affine would not be a bitwise no-op here (it maps the
            // rare exact `-0.0` sample to `+0.0`), so N(0,1) keeps the
            // raw path — exactly as the two-pass version skipped its
            // scaling sweep.
            fill_standard_normal(rng, out);
        } else {
            let (mean, std) = (self.mean, self.std);
            fill_mapped(rng, out, move |z| mean + std * z);
        }
    }

    /// Draws a single sample.
    pub fn sample<R: Prng>(&self, rng: &mut R) -> f32 {
        let (z, _) = box_muller(rng.next_f64_open(), rng.next_f64());
        self.mean + self.std * z as f32
    }

    /// Adds `scale * sample` to every element of `acc` — the fused
    /// "noisy gradient generation" primitive (Algorithm 1 line 34).
    pub fn accumulate<R: Prng>(&self, rng: &mut R, scale: f32, acc: &mut [f32]) {
        let mut chunks = acc.chunks_exact_mut(2);
        for pair in &mut chunks {
            let (z0, z1) = box_muller(rng.next_f64_open(), rng.next_f64());
            pair[0] += scale * (self.mean + self.std * z0 as f32);
            pair[1] += scale * (self.mean + self.std * z1 as f32);
        }
        if let Some(last) = chunks.into_remainder().first_mut() {
            let (z0, _) = box_muller(rng.next_f64_open(), rng.next_f64());
            *last += scale * (self.mean + self.std * z0 as f32);
        }
    }
}

impl Default for GaussianSampler {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256PlusPlus;
    use crate::stats;

    #[test]
    fn box_muller_known_values() {
        // u1 = 1 ⇒ r = 0 ⇒ both outputs zero regardless of u2.
        let (a, b) = box_muller(1.0, 0.25);
        assert!(a.abs() < 1e-12 && b.abs() < 1e-12);
        // u2 = 0 ⇒ theta = 0 ⇒ z1 = 0, z0 = r.
        let (z0, z1) = box_muller(0.5_f64, 0.0);
        assert!((z0 - (-2.0 * 0.5_f64.ln()).sqrt()).abs() < 1e-12);
        assert!(z1.abs() < 1e-12);
    }

    #[test]
    fn standard_normal_moments_and_ks() {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        let mut buf = vec![0.0f32; 100_000];
        fill_standard_normal(&mut rng, &mut buf);
        let mut xs: Vec<f64> = buf.iter().map(|&x| f64::from(x)).collect();
        let (mean, var) = stats::mean_var(&xs);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        let skew = stats::skewness(&xs);
        assert!(skew.abs() < 0.03, "skewness {skew}");
        let kurt = stats::excess_kurtosis(&xs);
        assert!(kurt.abs() < 0.08, "excess kurtosis {kurt}");
        let ks = stats::ks_statistic_normal(&mut xs, 0.0, 1.0);
        assert!(ks < stats::ks_critical(xs.len(), 0.001), "ks {ks}");
    }

    /// The pre-single-pass implementation, kept verbatim as the
    /// regression reference: unit normals first, then a separate
    /// mean/std sweep.
    fn two_pass_fill<R: Prng>(sampler: &GaussianSampler, rng: &mut R, out: &mut [f32]) {
        let mut chunks = out.chunks_exact_mut(2);
        for pair in &mut chunks {
            let (z0, z1) = box_muller(rng.next_f64_open(), rng.next_f64());
            pair[0] = z0 as f32;
            pair[1] = z1 as f32;
        }
        if let Some(last) = chunks.into_remainder().first_mut() {
            let (z0, _z1) = box_muller(rng.next_f64_open(), rng.next_f64());
            *last = z0 as f32;
        }
        if sampler.mean() != 0.0 || sampler.std() != 1.0 {
            for x in out {
                *x = sampler.mean() + sampler.std() * *x;
            }
        }
    }

    #[test]
    fn single_pass_fill_is_bitwise_the_two_pass_fill() {
        // The satellite regression: folding the affine into the
        // conversion loop (and batching the uniform draws) must change
        // neither a single output bit nor the PRNG stream position —
        // for every parity/length class around the batch size and for
        // identity and non-identity affines alike.
        for &(mean, std) in &[(0.0f32, 1.0f32), (3.0, 0.5), (-1.25, 2.0), (0.0, 0.125)] {
            let sampler = GaussianSampler::new(mean, std);
            for len in [0usize, 1, 2, 5, 63, 64, 65, 128, 1023] {
                let mut rng_new = Xoshiro256PlusPlus::seed_from(42 + len as u64);
                let mut rng_ref = Xoshiro256PlusPlus::seed_from(42 + len as u64);
                let mut got = vec![0.0f32; len];
                let mut want = vec![0.0f32; len];
                sampler.fill(&mut rng_new, &mut got);
                two_pass_fill(&sampler, &mut rng_ref, &mut want);
                let got_bits: Vec<u32> = got.iter().map(|x| x.to_bits()).collect();
                let want_bits: Vec<u32> = want.iter().map(|x| x.to_bits()).collect();
                assert_eq!(got_bits, want_bits, "mean {mean} std {std} len {len}");
                assert_eq!(
                    rng_new.next_u64(),
                    rng_ref.next_u64(),
                    "stream position moved (mean {mean} std {std} len {len})"
                );
            }
        }
    }

    #[test]
    fn counter_stream_fill_unit_is_bitwise_stable_under_batching() {
        // fill_unit paths run the same batched kernel over a counter
        // stream; the values must equal a pair-at-a-time conversion of
        // the same counters.
        use crate::counter::{CounterNoise, RowNoise};
        use crate::prng::{u64_to_unit_f64, u64_to_unit_f64_open};
        let noise = CounterNoise::new(99);
        let mut got = vec![0.0f32; 129];
        let mut n = noise;
        n.fill_unit(3, 17, 5, &mut got);
        let mut stream = noise.stream_for(3, 17, 5);
        for (i, &g) in got.iter().enumerate() {
            if i % 2 == 0 {
                let (z0, z1) = box_muller(
                    u64_to_unit_f64_open(stream.next_u64()),
                    u64_to_unit_f64(stream.next_u64()),
                );
                assert_eq!(g.to_bits(), (z0 as f32).to_bits(), "element {i}");
                if i + 1 < got.len() {
                    assert_eq!(
                        got[i + 1].to_bits(),
                        (z1 as f32).to_bits(),
                        "element {}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn odd_length_fill_consumes_deterministic_uniforms() {
        let mut a = Xoshiro256PlusPlus::seed_from(3);
        let mut b = Xoshiro256PlusPlus::seed_from(3);
        let mut buf = vec![0.0f32; 5];
        fill_standard_normal(&mut a, &mut buf);
        // 5 outputs -> 3 Box-Muller invocations -> 6 uniforms.
        for _ in 0..6 {
            let _ = b.next_f64();
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn sampler_scales_mean_and_std() {
        let mut rng = Xoshiro256PlusPlus::seed_from(11);
        let sampler = GaussianSampler::new(3.0, 0.5);
        let mut buf = vec![0.0f32; 50_000];
        sampler.fill(&mut rng, &mut buf);
        let xs: Vec<f64> = buf.iter().map(|&x| f64::from(x)).collect();
        let (mean, var) = stats::mean_var(&xs);
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }

    #[test]
    fn accumulate_adds_scaled_noise() {
        let mut rng_a = Xoshiro256PlusPlus::seed_from(4);
        let mut rng_b = Xoshiro256PlusPlus::seed_from(4);
        let sampler = GaussianSampler::new(0.0, 2.0);
        let mut acc = vec![10.0f32; 9];
        sampler.accumulate(&mut rng_a, 0.5, &mut acc);
        let mut reference = vec![0.0f32; 9];
        sampler.fill(&mut rng_b, &mut reference);
        for (a, r) in acc.iter().zip(reference.iter()) {
            assert!((a - (10.0 + 0.5 * r)).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "std must be finite")]
    fn sampler_rejects_negative_std() {
        let _ = GaussianSampler::new(0.0, -1.0);
    }

    #[test]
    fn sum_of_gaussians_matches_aggregated_distribution() {
        // Theorem 5.1 of the paper at the sampler level: the sum of n
        // independent N(0, σ²) draws has the distribution N(0, n·σ²).
        let n = 16usize;
        let sigma = 0.7f32;
        let mut rng = Xoshiro256PlusPlus::seed_from(31);
        let per_step = GaussianSampler::new(0.0, sigma);
        let mut sums: Vec<f64> = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            let mut acc = 0.0f64;
            for _ in 0..n {
                acc += f64::from(per_step.sample(&mut rng));
            }
            sums.push(acc);
        }
        let (mean, var) = stats::mean_var(&sums);
        let expect_var = f64::from(sigma) * f64::from(sigma) * n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!(
            (var - expect_var).abs() / expect_var < 0.05,
            "var {var} vs {expect_var}"
        );
        let ks = stats::ks_statistic_normal(&mut sums, 0.0, expect_var.sqrt());
        assert!(ks < stats::ks_critical(sums.len(), 0.001), "ks {ks}");
    }
}
