//! ε-sweep regression: pins the accountant's (ε, order) outputs for a
//! grid of mechanisms to 12 decimal digits.
//!
//! The RDP pipeline is pure floating-point math with no platform- or
//! thread-dependent ordering, so its outputs are bitwise-stable; any
//! drift here means the accounting changed, which is a privacy-contract
//! event — not a refactor detail. Tolerance is 1e-12 *relative*, loose
//! enough to survive a compiler's re-association of a commutative
//! reduction but tight enough to catch any real change to the math.

// The pins are transcribed verbatim from the accountant's own
// `{:.17e}` output; keeping every digit (one past f64's 16) makes
// regeneration diffs exact, so the precision is deliberate.
#![allow(clippy::excessive_precision)]

use lazydp_privacy::{Mechanism, RdpAccountant};

const DELTA: f64 = 1e-6;
const Q: f64 = 0.005;
const STEPS: u64 = 2000;

/// (mechanism, pinned ε at δ=1e-6, pinned optimal order).
fn pinned_cases() -> Vec<(Mechanism, f64, u32)> {
    vec![
        (
            Mechanism::Gaussian { sigma: 0.8 },
            3.065_572_415_613_581_29,
            6,
        ),
        (
            Mechanism::Gaussian { sigma: 1.0 },
            1.767_385_735_868_779_89,
            10,
        ),
        (
            Mechanism::Gaussian { sigma: 1.5 },
            7.947_591_814_117_572_76e-1,
            22,
        ),
        (
            Mechanism::Gaussian { sigma: 2.0 },
            5.342_078_287_995_359_89e-1,
            37,
        ),
        (
            Mechanism::SelectThenNoise {
                sigma: 1.0,
                sigma_select: 1.0,
            },
            4.688_687_809_871_280_98,
            4,
        ),
        (
            Mechanism::SelectThenNoise {
                sigma: 1.0,
                sigma_select: 2.0,
            },
            2.338_470_068_825_269_98,
            7,
        ),
        (
            Mechanism::SelectThenNoise {
                sigma: 1.5,
                sigma_select: 3.0,
            },
            9.529_613_126_442_443_29e-1,
            18,
        ),
    ]
}

#[test]
fn epsilon_sweep_matches_pinned_values_to_1e12() {
    for (mechanism, pinned_eps, pinned_order) in pinned_cases() {
        let mut acc = RdpAccountant::new();
        acc.compose_mechanism(&mechanism, Q, STEPS);
        let (eps, order) = acc.epsilon(DELTA);
        assert!(
            (eps - pinned_eps).abs() <= 1e-12 * pinned_eps,
            "{mechanism:?}: ε drifted from pin: got {eps:.17e}, pinned {pinned_eps:.17e}"
        );
        assert_eq!(
            order, pinned_order,
            "{mechanism:?}: optimal RDP order changed"
        );
    }
}

#[test]
fn epsilon_sweep_is_reproducible_within_a_process() {
    // Two independent accountants over the same schedule must agree
    // bitwise — the sweep has no hidden state.
    for (mechanism, _, _) in pinned_cases() {
        let run = |mech: &Mechanism| {
            let mut acc = RdpAccountant::new();
            acc.compose_mechanism(mech, Q, STEPS);
            acc.epsilon(DELTA)
        };
        assert_eq!(run(&mechanism), run(&mechanism), "{mechanism:?}");
    }
}
