//! Budget-enforcing privacy engine.
//!
//! Opacus pairs its accountant with a `PrivacyEngine` that stops
//! training before a target (ε, δ) is exceeded; this is the equivalent
//! for the LazyDP stack. The engine pre-computes nothing — it simply
//! refuses compositions that would overshoot, so the *released* model
//! provably stays within budget.

use crate::mechanism::Mechanism;
use crate::rdp::RdpAccountant;
use std::fmt;

/// A target (ε, δ) privacy budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    /// Maximum tolerable ε.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
}

impl PrivacyBudget {
    /// Creates a budget.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon <= 0` or `delta ∉ (0, 1)`.
    #[must_use]
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        Self { epsilon, delta }
    }
}

/// Error returned when a composition would exceed the budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetExhausted {
    /// ε the run would reach if the composition were allowed.
    pub would_reach: f64,
    /// The configured ceiling.
    pub budget: f64,
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy budget exhausted: composing would reach ε = {:.4} > {:.4}",
            self.would_reach, self.budget
        )
    }
}

impl std::error::Error for BudgetExhausted {}

/// An accountant wrapped with a hard budget.
#[derive(Debug, Clone)]
pub struct PrivacyEngine {
    accountant: RdpAccountant,
    budget: PrivacyBudget,
}

impl PrivacyEngine {
    /// Creates an engine with the given budget.
    #[must_use]
    pub fn new(budget: PrivacyBudget) -> Self {
        Self {
            accountant: RdpAccountant::new(),
            budget,
        }
    }

    /// The configured budget.
    #[must_use]
    pub fn budget(&self) -> PrivacyBudget {
        self.budget
    }

    /// ε spent so far (at the budget's δ).
    #[must_use]
    pub fn spent(&self) -> f64 {
        if self.accountant.steps() == 0 {
            return 0.0;
        }
        self.accountant.epsilon(self.budget.delta).0
    }

    /// Remaining headroom `budget − spent` (may be 0, never negative).
    #[must_use]
    pub fn remaining(&self) -> f64 {
        (self.budget.epsilon - self.spent()).max(0.0)
    }

    /// Attempts to charge `steps` DP-SGD steps at `(sigma, q)`; rejects
    /// (without charging) if that would exceed the budget.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the composition would overshoot.
    pub fn try_compose(&mut self, sigma: f64, q: f64, steps: u64) -> Result<(), BudgetExhausted> {
        self.try_compose_mechanism(&Mechanism::Gaussian { sigma }, q, steps)
    }

    /// Attempts to charge `steps` subsampled steps of `mechanism` at
    /// sampling rate `q`; rejects (without charging) if that would
    /// exceed the budget. This is how a DP-AdaFEST run ties its
    /// composed selection+noise mechanism to a hard budget.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExhausted`] when the composition would overshoot.
    pub fn try_compose_mechanism(
        &mut self,
        mechanism: &Mechanism,
        q: f64,
        steps: u64,
    ) -> Result<(), BudgetExhausted> {
        let mut trial = self.accountant.clone();
        trial.compose_mechanism(mechanism, q, steps);
        let (eps, _) = trial.epsilon(self.budget.delta);
        if eps > self.budget.epsilon {
            return Err(BudgetExhausted {
                would_reach: eps,
                budget: self.budget.epsilon,
            });
        }
        self.accountant = trial;
        // ε is a *public* quantity (it is the privacy statement itself),
        // so mirroring it into the registry leaks nothing per-example.
        lazydp_obs::metrics().privacy.compositions.incr();
        lazydp_obs::metrics().privacy.spent_epsilon.set_f64(eps);
        Ok(())
    }

    /// Largest number of additional steps at `(sigma, q)` that still
    /// fits the budget (binary search; 0 if none fit).
    #[must_use]
    pub fn affordable_steps(&self, sigma: f64, q: f64) -> u64 {
        let fits = |steps: u64| -> bool {
            if steps == 0 {
                return true;
            }
            let mut trial = self.accountant.clone();
            trial.compose(sigma, q, steps);
            trial.epsilon(self.budget.delta).0 <= self.budget.epsilon
        };
        if !fits(1) {
            return 0;
        }
        let mut hi = 1u64;
        while fits(hi * 2) {
            hi *= 2;
            if hi > 1 << 40 {
                return hi; // effectively unbounded for this (σ, q)
            }
        }
        let mut lo = hi;
        hi *= 2;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The wrapped accountant (read-only).
    #[must_use]
    pub fn accountant(&self) -> &RdpAccountant {
        &self.accountant
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_charges_until_budget_then_refuses() {
        let mut e = PrivacyEngine::new(PrivacyBudget::new(2.0, 1e-6));
        assert_eq!(e.spent(), 0.0);
        assert!(e.try_compose(1.0, 0.01, 500).is_ok());
        let spent = e.spent();
        assert!(spent > 0.0 && spent <= 2.0);
        // A huge follow-up must be rejected WITHOUT charging.
        let err = e.try_compose(1.0, 0.01, 1_000_000).expect_err("overshoot");
        assert!(err.would_reach > 2.0);
        assert_eq!(e.spent(), spent, "rejected composition must not charge");
    }

    #[test]
    fn affordable_steps_is_tight() {
        let e = {
            let mut e = PrivacyEngine::new(PrivacyBudget::new(1.5, 1e-6));
            e.try_compose(1.1, 0.005, 1000).expect("fits");
            e
        };
        let n = e.affordable_steps(1.1, 0.005);
        assert!(n > 0);
        let mut clone = e.clone();
        assert!(clone.try_compose(1.1, 0.005, n).is_ok(), "n steps must fit");
        let mut clone2 = e.clone();
        assert!(
            clone2.try_compose(1.1, 0.005, n + 1).is_err(),
            "n+1 steps must not fit"
        );
    }

    #[test]
    fn zero_headroom_affords_zero_steps() {
        let mut e = PrivacyEngine::new(PrivacyBudget::new(0.05, 1e-6));
        // One step at q=1 already blows a 0.05 budget.
        assert!(e.try_compose(1.0, 1.0, 1).is_err());
        assert_eq!(e.affordable_steps(1.0, 1.0), 0);
        assert_eq!(e.remaining(), 0.05);
    }

    #[test]
    fn remaining_shrinks_monotonically() {
        let mut e = PrivacyEngine::new(PrivacyBudget::new(8.0, 1e-6));
        let mut prev = e.remaining();
        for _ in 0..5 {
            e.try_compose(1.0, 0.02, 200).expect("fits");
            let now = e.remaining();
            assert!(now < prev);
            prev = now;
        }
    }

    #[test]
    fn mechanism_composition_charges_more_for_selection() {
        // At the same σ, the composed selection+noise mechanism must
        // drain a budget strictly faster than plain Gaussian — and a
        // rejected mechanism composition must not charge.
        let mut plain = PrivacyEngine::new(PrivacyBudget::new(12.0, 1e-6));
        let mut composed = PrivacyEngine::new(PrivacyBudget::new(12.0, 1e-6));
        let m = Mechanism::SelectThenNoise {
            sigma: 1.0,
            sigma_select: 1.0,
        };
        plain.try_compose(1.0, 0.02, 300).expect("fits");
        composed.try_compose_mechanism(&m, 0.02, 300).expect("fits");
        assert!(composed.spent() > plain.spent());
        let spent = composed.spent();
        let err = composed
            .try_compose_mechanism(&m, 0.02, 10_000_000)
            .expect_err("overshoot");
        assert!(err.would_reach > 12.0);
        assert_eq!(composed.spent(), spent, "rejection must not charge");
    }

    #[test]
    fn display_message_is_actionable() {
        let err = BudgetExhausted {
            would_reach: 3.2,
            budget: 2.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("3.2") && msg.contains("2.0"), "{msg}");
    }
}
