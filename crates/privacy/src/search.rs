//! Noise-multiplier search: inverts the accountant.
//!
//! The LazyDP user interface (paper Fig. 9(a)) takes a `noise_multiplier`
//! hyper-parameter; practitioners usually derive it from a target (ε, δ)
//! budget. This module binary-searches the monotone map σ ↦ ε.

use crate::rdp::RdpAccountant;

/// Finds the smallest noise multiplier σ (within `tol`) such that
/// `steps` DP-SGD iterations at sampling rate `q` satisfy
/// (ε ≤ `target_epsilon`, δ = `target_delta`).
///
/// Returns `None` if even σ = 1000 cannot reach the target (pathological
/// budgets).
///
/// # Panics
///
/// Panics if `target_epsilon <= 0`, `target_delta ∉ (0,1)`, `q ∉ (0,1]`,
/// or `steps == 0`.
#[must_use]
pub fn find_noise_multiplier(
    target_epsilon: f64,
    target_delta: f64,
    q: f64,
    steps: u64,
    tol: f64,
) -> Option<f64> {
    assert!(target_epsilon > 0.0, "target epsilon must be positive");
    assert!(
        target_delta > 0.0 && target_delta < 1.0,
        "target delta must be in (0,1)"
    );
    assert!(q > 0.0 && q <= 1.0, "sampling rate must be in (0,1]");
    assert!(steps > 0, "need at least one step");

    let eps_at = |sigma: f64| -> f64 {
        let mut acc = RdpAccountant::new();
        acc.compose(sigma, q, steps);
        acc.epsilon(target_delta).0
    };

    let mut hi = 1.0f64;
    while eps_at(hi) > target_epsilon {
        hi *= 2.0;
        if hi > 1000.0 {
            return None;
        }
    }
    let mut lo = hi / 2.0;
    if hi <= 1.0 {
        lo = 1e-3;
        if eps_at(lo) <= target_epsilon {
            return Some(lo);
        }
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if eps_at(mid) > target_epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn found_sigma_meets_target_and_is_tight() {
        let q = 0.01;
        let steps = 5_000;
        let target_eps = 2.0;
        let delta = 1e-6;
        let sigma =
            find_noise_multiplier(target_eps, delta, q, steps, 1e-4).expect("target reachable");
        let mut acc = RdpAccountant::new();
        acc.compose(sigma, q, steps);
        assert!(acc.epsilon(delta).0 <= target_eps, "meets target");
        // Slightly less noise must violate the target (tightness).
        let mut acc2 = RdpAccountant::new();
        acc2.compose(sigma - 0.01, q, steps);
        assert!(acc2.epsilon(delta).0 > target_eps, "tight within 0.01");
    }

    #[test]
    fn tighter_budget_needs_more_noise() {
        let q = 0.005;
        let steps = 10_000;
        let s1 = find_noise_multiplier(8.0, 1e-5, q, steps, 1e-3).expect("reachable");
        let s2 = find_noise_multiplier(1.0, 1e-5, q, steps, 1e-3).expect("reachable");
        assert!(s2 > s1, "ε=1 needs more noise than ε=8 ({s2} vs {s1})");
    }

    #[test]
    fn roundtrip_with_paper_default_sigma() {
        // Fig. 9(a) example uses σ = 1.1. Whatever ε that yields must be
        // recovered by the search (within tolerance).
        let q = 2048.0 / 1.0e6;
        let steps = 2_000;
        let delta = 1e-6;
        let mut acc = RdpAccountant::new();
        acc.compose(1.1, q, steps);
        let (eps, _) = acc.epsilon(delta);
        let sigma = find_noise_multiplier(eps, delta, q, steps, 1e-4).expect("reachable");
        assert!((sigma - 1.1).abs() < 0.02, "recovered σ = {sigma}");
    }

    #[test]
    fn unreachable_budget_returns_none() {
        // Absurdly tiny ε with q=1 and many steps cannot be met by σ≤1000.
        assert!(find_noise_multiplier(1e-6, 1e-9, 1.0, 1_000_000, 1e-3).is_none());
    }
}
