//! Mechanism types the accountant can compose.
//!
//! Until DP-AdaFEST every optimizer in the workspace released one
//! Poisson-subsampled **Gaussian** query per step (the clipped, noised
//! gradient), so `(σ, q)` was the whole story. AdaFEST (Ghazi et al.,
//! arXiv 2311.08357) releases **two** Gaussian-perturbed queries per
//! step: the partition *counts* (perturbed at `σ_select`, thresholded to
//! pick which partitions get noised) and the clipped *gradient* restricted
//! to the selected partitions (perturbed at `σ`). [`Mechanism`] captures
//! both shapes so `RdpAccountant::compose_mechanism` and
//! `PrivacyEngine::try_compose_mechanism` can charge the right cost.
//!
//! # Accounting model for [`Mechanism::SelectThenNoise`]
//!
//! Adding or removing one example changes each partition count by at most
//! its per-example contribution and the clipped gradient by at most `C`
//! (both queries are normalized to unit ℓ₂-sensitivity here: `σ_select`
//! is the noise multiplier *relative to the count query's sensitivity*,
//! exactly as `σ` is relative to `C`). The optimizer is responsible for
//! realizing that normalization — `AdaFestOptimizer` scales the noise it
//! actually adds to each count by the joint query's sensitivity bound
//! `Δ = max_lookups · √(num_tables)` and rejects batches that exceed the
//! per-example lookup bound, so the `σ_select` it reports here never
//! undercharges. The joint release of two Gaussian
//! views of the same example is itself a Gaussian mechanism on the
//! concatenated query, whose RDP at order α is the **sum** of the parts:
//!
//! ```text
//! RDP(α) = α/(2σ²) + α/(2σ_select²) = α/2 · (1/σ² + 1/σ_select²)
//! ```
//!
//! i.e. the cost of a single Gaussian mechanism at the *effective* noise
//! multiplier `σ_eff = (1/σ² + 1/σ_select²)^(−1/2)`. Under Poisson
//! subsampling the pair is one subsampled Gaussian query at `σ_eff`, so
//! the step cost is `compute_rdp_step(σ_eff, q, α)`. This is the
//! standard, slightly conservative joint-composition bound — the
//! data-dependent post-processing (thresholding the noisy counts) is
//! free by the post-processing theorem.

use crate::rdp::compute_rdp_step;

/// A per-step privacy mechanism, composed `T` times over training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// The classic DP-SGD step: one subsampled Gaussian query at noise
    /// multiplier `sigma` (eager DP-SGD, EANA's nominal accounting, and
    /// LazyDP — lazy timing does not change what is released).
    Gaussian {
        /// Noise multiplier σ (relative to the clip norm `C`).
        sigma: f64,
    },
    /// DP-AdaFEST's composed step: a Gaussian-perturbed partition-count
    /// selection at `sigma_select` followed by Gaussian gradient noise
    /// at `sigma` on the selected partitions (see the module docs for
    /// the sensitivity normalization and the joint bound).
    SelectThenNoise {
        /// Gradient noise multiplier σ (relative to the clip norm `C`).
        sigma: f64,
        /// Selection noise multiplier σ_select (relative to the count
        /// query's sensitivity).
        sigma_select: f64,
    },
}

impl Mechanism {
    /// The single-Gaussian noise multiplier this mechanism is
    /// accounting-equivalent to: `σ` for [`Gaussian`](Self::Gaussian),
    /// `(1/σ² + 1/σ_select²)^(−1/2)` for
    /// [`SelectThenNoise`](Self::SelectThenNoise).
    ///
    /// # Panics
    ///
    /// Panics if any noise multiplier is not positive and finite.
    #[must_use]
    pub fn effective_sigma(&self) -> f64 {
        match *self {
            Self::Gaussian { sigma } => {
                assert!(
                    sigma > 0.0 && sigma.is_finite(),
                    "sigma must be positive and finite"
                );
                sigma
            }
            Self::SelectThenNoise {
                sigma,
                sigma_select,
            } => {
                assert!(
                    sigma > 0.0 && sigma.is_finite(),
                    "sigma must be positive and finite"
                );
                assert!(
                    sigma_select > 0.0 && sigma_select.is_finite(),
                    "sigma_select must be positive and finite"
                );
                1.0 / (1.0 / (sigma * sigma) + 1.0 / (sigma_select * sigma_select)).sqrt()
            }
        }
    }

    /// RDP of **one** subsampled step of this mechanism at integer order
    /// `alpha` (delegates to [`compute_rdp_step`] at the effective σ).
    ///
    /// # Panics
    ///
    /// Panics on invalid multipliers, `alpha < 2`, or `q ∉ [0, 1]`.
    #[must_use]
    pub fn rdp_step(&self, q: f64, alpha: u32) -> f64 {
        compute_rdp_step(self.effective_sigma(), q, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_effective_sigma_is_identity() {
        for sigma in [0.3f64, 1.0, 2.7] {
            assert_eq!(Mechanism::Gaussian { sigma }.effective_sigma(), sigma);
        }
    }

    #[test]
    fn select_then_noise_matches_closed_form_at_integer_orders() {
        // q = 1 (no subsampling): the composed step must equal
        // α/2 · (1/σ² + 1/σ_select²) exactly at every integer order.
        for (sigma, sigma_select) in [(1.0f64, 1.0f64), (0.8, 2.0), (2.5, 0.6)] {
            let m = Mechanism::SelectThenNoise {
                sigma,
                sigma_select,
            };
            for alpha in [2u32, 3, 8, 17, 64] {
                let got = m.rdp_step(1.0, alpha);
                let closed = f64::from(alpha) / 2.0
                    * (1.0 / (sigma * sigma) + 1.0 / (sigma_select * sigma_select));
                assert!(
                    (got - closed).abs() < 1e-12 * closed.max(1.0),
                    "α={alpha} σ={sigma} σ_sel={sigma_select}: {got} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn select_then_noise_rdp_is_monotone_in_both_sigmas() {
        // More noise on either query ⇒ strictly less RDP cost, at every
        // tracked subsampling regime.
        for q in [1.0f64, 0.25, 0.01] {
            for alpha in [2u32, 8, 32] {
                let mut prev = f64::INFINITY;
                for sigma in [0.5f64, 0.8, 1.2, 2.0, 4.0] {
                    let cost = Mechanism::SelectThenNoise {
                        sigma,
                        sigma_select: 1.0,
                    }
                    .rdp_step(q, alpha);
                    assert!(cost < prev, "σ sweep not monotone at q={q} α={alpha}");
                    prev = cost;
                }
                let mut prev = f64::INFINITY;
                for sigma_select in [0.5f64, 0.8, 1.2, 2.0, 4.0] {
                    let cost = Mechanism::SelectThenNoise {
                        sigma: 1.0,
                        sigma_select,
                    }
                    .rdp_step(q, alpha);
                    assert!(
                        cost < prev,
                        "σ_select sweep not monotone at q={q} α={alpha}"
                    );
                    prev = cost;
                }
            }
        }
    }

    #[test]
    fn selection_always_costs_extra_over_plain_gaussian() {
        // The composed mechanism releases strictly more information
        // than the gradient query alone: its cost must exceed the plain
        // Gaussian at the same σ, and approach it as σ_select → ∞.
        let plain = Mechanism::Gaussian { sigma: 1.0 }.rdp_step(0.02, 8);
        let composed = Mechanism::SelectThenNoise {
            sigma: 1.0,
            sigma_select: 1.0,
        }
        .rdp_step(0.02, 8);
        assert!(composed > plain);
        let nearly_free = Mechanism::SelectThenNoise {
            sigma: 1.0,
            sigma_select: 1e6,
        }
        .rdp_step(0.02, 8);
        assert!((nearly_free - plain).abs() < 1e-9 * plain);
    }

    #[test]
    fn equal_sigmas_halve_the_effective_sigma_by_sqrt2() {
        let m = Mechanism::SelectThenNoise {
            sigma: 1.3,
            sigma_select: 1.3,
        };
        let expect = 1.3 / std::f64::consts::SQRT_2;
        assert!((m.effective_sigma() - expect).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sigma_select")]
    fn rejects_nonpositive_selection_sigma() {
        let _ = Mechanism::SelectThenNoise {
            sigma: 1.0,
            sigma_select: 0.0,
        }
        .effective_sigma();
    }
}
