//! Differential-privacy accounting for DP-SGD training.
//!
//! This crate is the accounting substrate that PyTorch Opacus provides in
//! the paper's software stack (§5.3): given the noise multiplier σ, the
//! Poisson sampling rate q, and the number of steps T, it computes the
//! (ε, δ) guarantee of the trained model via **Rényi differential
//! privacy** (RDP) of the subsampled Gaussian mechanism (Abadi et al.
//! 2016; Mironov et al. 2019), and can invert the computation to find the
//! σ needed for a target ε.
//!
//! A key property the LazyDP paper relies on (§5.1–5.2): the privacy
//! guarantee depends only on *(σ, q, T)* — i.e. on **what** noise is
//! added over the course of training, not on **when** individual noise
//! updates land in memory. LazyDP's lazy noise updates and aggregated
//! sampling therefore leave this accountant's output unchanged, which is
//! asserted by tests in `lazydp-core`.
//!
//! # Example
//!
//! ```
//! use lazydp_privacy::RdpAccountant;
//!
//! // MLPerf-DLRM-like run: q = 2048/4e6, sigma = 1.1, 10k steps.
//! let mut acc = RdpAccountant::new();
//! acc.compose(1.1, 2048.0 / 4.0e6, 10_000);
//! let (eps, _order) = acc.epsilon(1e-6);
//! assert!(eps > 0.0 && eps < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod engine;
pub mod mechanism;
pub mod rdp;
pub mod search;

pub use convert::{rdp_to_epsilon, rdp_to_epsilon_classic};
pub use engine::{BudgetExhausted, PrivacyBudget, PrivacyEngine};
pub use mechanism::Mechanism;
pub use rdp::{compute_rdp_step, default_orders, RdpAccountant};
pub use search::find_noise_multiplier;
