//! Rényi-DP of the Poisson-subsampled Gaussian mechanism.
//!
//! For an integer Rényi order α ≥ 2, sampling rate `q`, and noise
//! multiplier `σ`, one DP-SGD step satisfies (Mironov, Talwar & Zhang
//! 2019; Abadi et al. 2016, Lemma 3):
//!
//! ```text
//! RDP(α) = 1/(α−1) · ln( Σ_{k=0..α} C(α,k)·(1−q)^{α−k}·q^k·exp(k(k−1)/(2σ²)) )
//! ```
//!
//! computed here in log-space for numerical stability. RDP composes
//! additively over steps, and [`RdpAccountant`] tracks the running total
//! across a family of orders, converting to (ε, δ) on demand.

use crate::convert::rdp_to_epsilon;
use crate::mechanism::Mechanism;

/// The default family of integer Rényi orders tracked by the accountant
/// (2..=64 densely, then exponentially spaced up to 1024 — mirroring the
/// ranges Opacus/TF-Privacy search over).
#[must_use]
pub fn default_orders() -> Vec<u32> {
    let mut orders: Vec<u32> = (2..=64).collect();
    let mut o = 72u32;
    while o <= 1024 {
        orders.push(o);
        o = (o as f64 * 1.25) as u32;
    }
    orders
}

/// Log-space sum: `ln(exp(a) + exp(b))`.
fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// RDP of **one** subsampled-Gaussian step at integer order `alpha`.
///
/// Special cases: `q == 0` costs nothing; `q == 1` is the plain Gaussian
/// mechanism with `RDP(α) = α/(2σ²)`.
///
/// # Panics
///
/// Panics if `alpha < 2`, `sigma <= 0`, or `q ∉ [0, 1]`.
#[must_use]
pub fn compute_rdp_step(sigma: f64, q: f64, alpha: u32) -> f64 {
    assert!(alpha >= 2, "integer RDP orders start at 2");
    assert!(sigma > 0.0, "noise multiplier must be positive");
    assert!((0.0..=1.0).contains(&q), "sampling rate must be in [0,1]");
    if q == 0.0 {
        return 0.0;
    }
    let a = f64::from(alpha);
    if (q - 1.0).abs() < 1e-15 {
        return a / (2.0 * sigma * sigma);
    }
    let ln_q = q.ln();
    let ln_1q = (-q).ln_1p();
    // log-sum-exp over k of:
    //   ln C(α,k) + (α−k)·ln(1−q) + k·ln q + k(k−1)/(2σ²)
    let mut ln_binom = 0.0f64; // ln C(α,0)
    let mut acc = f64::NEG_INFINITY;
    for k in 0..=alpha {
        if k > 0 {
            // C(α,k) = C(α,k−1) · (α−k+1)/k
            ln_binom += ((a - f64::from(k) + 1.0) / f64::from(k)).ln();
        }
        let kf = f64::from(k);
        let term =
            ln_binom + (a - kf) * ln_1q + kf * ln_q + kf * (kf - 1.0) / (2.0 * sigma * sigma);
        acc = log_add(acc, term);
    }
    (acc / (a - 1.0)).max(0.0)
}

/// Running RDP accountant over the [`default_orders`] family.
///
/// Usage: [`compose`](Self::compose) once per homogeneous training phase,
/// then [`epsilon`](Self::epsilon) for the (ε, δ) guarantee.
#[derive(Debug, Clone, PartialEq)]
pub struct RdpAccountant {
    orders: Vec<u32>,
    rdp: Vec<f64>,
    steps: u64,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpAccountant {
    /// Creates an accountant over the default order family.
    #[must_use]
    pub fn new() -> Self {
        Self::with_orders(default_orders())
    }

    /// Creates an accountant over a custom order family.
    ///
    /// # Panics
    ///
    /// Panics if `orders` is empty or contains an order < 2.
    #[must_use]
    pub fn with_orders(orders: Vec<u32>) -> Self {
        assert!(!orders.is_empty(), "need at least one Rényi order");
        assert!(orders.iter().all(|&o| o >= 2), "orders must be >= 2");
        let n = orders.len();
        Self {
            orders,
            rdp: vec![0.0; n],
            steps: 0,
        }
    }

    /// Accumulates `steps` DP-SGD steps at `(sigma, q)` — shorthand for
    /// [`compose_mechanism`](Self::compose_mechanism) with
    /// [`Mechanism::Gaussian`].
    ///
    /// # Panics
    ///
    /// Panics on invalid `sigma`/`q` (see [`compute_rdp_step`]).
    pub fn compose(&mut self, sigma: f64, q: f64, steps: u64) {
        self.compose_mechanism(&Mechanism::Gaussian { sigma }, q, steps);
    }

    /// Accumulates `steps` subsampled steps of `mechanism` at sampling
    /// rate `q`. RDP composes additively across steps and across
    /// heterogeneous mechanisms, so a run may freely interleave
    /// [`Mechanism::Gaussian`] and [`Mechanism::SelectThenNoise`]
    /// phases.
    ///
    /// # Panics
    ///
    /// Panics on invalid mechanism multipliers or `q ∉ [0, 1]`.
    pub fn compose_mechanism(&mut self, mechanism: &Mechanism, q: f64, steps: u64) {
        for (i, &alpha) in self.orders.iter().enumerate() {
            self.rdp[i] += steps as f64 * mechanism.rdp_step(q, alpha);
        }
        self.steps += steps;
    }

    /// Total steps composed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Best (ε, order) at failure probability `delta`, minimizing over
    /// the tracked orders with the improved RDP→DP conversion.
    ///
    /// # Panics
    ///
    /// Panics if `delta ∉ (0, 1)`.
    #[must_use]
    pub fn epsilon(&self, delta: f64) -> (f64, u32) {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let mut best = (f64::INFINITY, self.orders[0]);
        for (i, &alpha) in self.orders.iter().enumerate() {
            let eps = rdp_to_epsilon(self.rdp[i], f64::from(alpha), delta);
            if eps < best.0 {
                best = (eps, alpha);
            }
        }
        best
    }

    /// The tracked `(order, total_rdp)` pairs.
    pub fn rdp_curve(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.orders.iter().copied().zip(self.rdp.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_batch_reduces_to_plain_gaussian() {
        // q = 1 ⇒ RDP(α) = α / (2σ²).
        for alpha in [2u32, 8, 32] {
            for sigma in [0.5f64, 1.0, 4.0] {
                let got = compute_rdp_step(sigma, 1.0, alpha);
                let expect = f64::from(alpha) / (2.0 * sigma * sigma);
                assert!((got - expect).abs() < 1e-9, "α={alpha} σ={sigma}");
            }
        }
    }

    #[test]
    fn zero_rate_costs_nothing() {
        assert_eq!(compute_rdp_step(1.0, 0.0, 16), 0.0);
    }

    #[test]
    fn rdp_monotone_in_q_and_sigma_and_alpha() {
        let base = compute_rdp_step(1.0, 0.01, 8);
        assert!(
            compute_rdp_step(1.0, 0.02, 8) > base,
            "more sampling, more cost"
        );
        assert!(
            compute_rdp_step(2.0, 0.01, 8) < base,
            "more noise, less cost"
        );
        assert!(
            compute_rdp_step(1.0, 0.01, 16) > base,
            "higher order, more cost"
        );
        assert!(base > 0.0);
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        // Subsampled cost must be far below the unsubsampled cost and,
        // for small q, roughly quadratic in q (privacy amplification).
        let sigma = 1.0;
        let alpha = 4u32;
        let full = compute_rdp_step(sigma, 1.0, alpha);
        let q = 1e-3;
        let sub = compute_rdp_step(sigma, q, alpha);
        assert!(sub < full * 1e-2, "sub {sub} vs full {full}");
        let sub2 = compute_rdp_step(sigma, 2.0 * q, alpha);
        let ratio = sub2 / sub;
        assert!(
            (3.0..5.0).contains(&ratio),
            "q-scaling ratio {ratio} not ~4"
        );
    }

    #[test]
    fn mechanism_composition_is_additive_over_steps() {
        // T steps of the selection+noise mechanism must cost exactly
        // T × one step, at every tracked order (additive composition).
        let m = Mechanism::SelectThenNoise {
            sigma: 1.1,
            sigma_select: 2.0,
        };
        let mut one = RdpAccountant::new();
        one.compose_mechanism(&m, 0.01, 1);
        let mut many = RdpAccountant::new();
        many.compose_mechanism(&m, 0.01, 750);
        for ((_, r1), (_, r750)) in one.rdp_curve().zip(many.rdp_curve()) {
            assert!((r750 - 750.0 * r1).abs() <= 1e-9 * r750.max(1.0));
        }
        assert_eq!(many.steps(), 750);
    }

    #[test]
    fn gaussian_mechanism_compose_matches_legacy_compose() {
        // The (σ, q, T) shorthand and the mechanism route must agree
        // bitwise — compose() is defined as the Gaussian special case.
        let mut a = RdpAccountant::new();
        a.compose(1.3, 0.05, 42);
        let mut b = RdpAccountant::new();
        b.compose_mechanism(&Mechanism::Gaussian { sigma: 1.3 }, 0.05, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn accountant_composes_linearly() {
        let mut one = RdpAccountant::new();
        one.compose(1.1, 0.01, 1);
        let mut many = RdpAccountant::new();
        many.compose(1.1, 0.01, 500);
        for ((_, r1), (_, r500)) in one.rdp_curve().zip(many.rdp_curve()) {
            assert!((r500 - 500.0 * r1).abs() < 1e-9);
        }
        assert_eq!(many.steps(), 500);
    }

    #[test]
    fn epsilon_matches_published_mnist_reference_band() {
        // The canonical TF-Privacy / Opacus tutorial setting:
        // N = 60_000, batch = 256, σ = 1.1, 60 epochs, δ = 1e-5.
        // Published accountants report ε ≈ 3.0–3.6 depending on the
        // order grid and RDP→DP conversion (classic vs improved). Our
        // integer-order accountant with the classic conversion lands at
        // ≈ 3.0; assert the band and that the improved bound is tighter.
        let q = 256.0 / 60_000.0;
        let steps = (60.0f64 * 60_000.0 / 256.0).round() as u64;
        let mut acc = RdpAccountant::new();
        let mut best_classic = f64::INFINITY;
        acc.compose(1.1, q, steps);
        for (alpha, rdp) in acc.rdp_curve() {
            best_classic = best_classic.min(crate::convert::rdp_to_epsilon_classic(
                rdp,
                f64::from(alpha),
                1e-5,
            ));
        }
        let (eps_improved, order) = acc.epsilon(1e-5);
        assert!(
            (2.5..4.0).contains(&best_classic),
            "classic ε = {best_classic}, expected ≈ 3.0-3.6"
        );
        assert!(
            eps_improved <= best_classic,
            "improved ε {eps_improved} (order {order}) must not exceed classic {best_classic}"
        );
    }

    #[test]
    fn single_full_batch_step_near_analytic_gaussian_bound() {
        // q = 1, T = 1, σ = 1.1, δ = 1e-5: the analytic Gaussian
        // mechanism satisfies ε = √(2·ln(1.25/δ))/σ ≈ 4.40; the RDP
        // route must land in the same ballpark.
        let mut acc = RdpAccountant::new();
        acc.compose(1.1, 1.0, 1);
        let (eps, _) = acc.epsilon(1e-5);
        let analytic = (2.0 * (1.25f64 / 1e-5).ln()).sqrt() / 1.1;
        assert!(
            (eps / analytic - 1.0).abs() < 0.5,
            "RDP ε {eps} vs analytic {analytic}"
        );
    }

    #[test]
    fn epsilon_decreases_with_more_noise() {
        let q = 0.01;
        let mut prev = f64::INFINITY;
        for sigma in [0.8, 1.0, 2.0, 4.0] {
            let mut acc = RdpAccountant::new();
            acc.compose(sigma, q, 1000);
            let (eps, _) = acc.epsilon(1e-6);
            assert!(eps < prev, "σ={sigma}: ε={eps} !< {prev}");
            prev = eps;
        }
    }

    #[test]
    fn epsilon_increases_with_steps_and_delta_tightness() {
        let mut short = RdpAccountant::new();
        short.compose(1.0, 0.02, 100);
        let mut long = RdpAccountant::new();
        long.compose(1.0, 0.02, 10_000);
        assert!(long.epsilon(1e-5).0 > short.epsilon(1e-5).0);
        // Smaller δ ⇒ larger ε.
        assert!(short.epsilon(1e-9).0 > short.epsilon(1e-3).0);
    }

    #[test]
    fn heterogeneous_composition_accumulates() {
        let mut acc = RdpAccountant::new();
        acc.compose(1.0, 0.01, 100);
        let (eps1, _) = acc.epsilon(1e-5);
        acc.compose(2.0, 0.005, 100);
        let (eps2, _) = acc.epsilon(1e-5);
        assert!(eps2 > eps1, "composition only adds cost");
    }

    #[test]
    #[should_panic(expected = "noise multiplier")]
    fn rejects_nonpositive_sigma() {
        let _ = compute_rdp_step(0.0, 0.5, 4);
    }

    #[test]
    fn log_add_handles_neg_infinity() {
        assert_eq!(log_add(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(log_add(3.0, f64::NEG_INFINITY), 3.0);
        let s = log_add(0.0, 0.0); // ln(2)
        assert!((s - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
