//! RDP → (ε, δ) conversion.

/// Improved RDP-to-DP conversion (Balle, Barthe, Gaboardi, Hsu & Sato
/// 2020, Thm. 21 — the bound Opacus uses):
///
/// ```text
/// ε = rdp + ln((α−1)/α) − (ln δ + ln α)/(α−1)
/// ```
///
/// # Panics
///
/// Panics if `alpha <= 1` or `delta ∉ (0, 1)`.
#[must_use]
pub fn rdp_to_epsilon(rdp: f64, alpha: f64, delta: f64) -> f64 {
    assert!(alpha > 1.0, "order must exceed 1");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let eps = rdp + ((alpha - 1.0) / alpha).ln() - (delta.ln() + alpha.ln()) / (alpha - 1.0);
    eps.max(0.0)
}

/// Classic conversion (Mironov 2017, Prop. 3): `ε = rdp + ln(1/δ)/(α−1)`.
///
/// Always at least as loose as [`rdp_to_epsilon`]; kept for reference and
/// cross-checks.
///
/// # Panics
///
/// Panics if `alpha <= 1` or `delta ∉ (0, 1)`.
#[must_use]
pub fn rdp_to_epsilon_classic(rdp: f64, alpha: f64, delta: f64) -> f64 {
    assert!(alpha > 1.0, "order must exceed 1");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    (rdp + (1.0 / delta).ln() / (alpha - 1.0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improved_bound_is_no_looser_than_classic() {
        for &alpha in &[2.0, 4.0, 16.0, 64.0] {
            for &rdp in &[0.01, 0.5, 3.0] {
                for &delta in &[1e-5, 1e-8] {
                    let improved = rdp_to_epsilon(rdp, alpha, delta);
                    let classic = rdp_to_epsilon_classic(rdp, alpha, delta);
                    assert!(
                        improved <= classic + 1e-12,
                        "α={alpha} rdp={rdp} δ={delta}: {improved} > {classic}"
                    );
                }
            }
        }
    }

    #[test]
    fn epsilon_scales_with_rdp() {
        let a = rdp_to_epsilon(1.0, 8.0, 1e-5);
        let b = rdp_to_epsilon(2.0, 8.0, 1e-5);
        assert!((b - a - 1.0).abs() < 1e-12, "ε is affine in rdp at fixed α");
    }

    #[test]
    fn epsilon_never_negative() {
        assert_eq!(rdp_to_epsilon(0.0, 2.0, 0.9), 0.0);
        // Classic is ln(1/δ)/(α−1) at rdp = 0: tiny but positive.
        let c = rdp_to_epsilon_classic(0.0, 1000.0, 0.999);
        assert!((0.0..1e-5).contains(&c), "classic at rdp=0: {c}");
    }

    #[test]
    fn classic_known_value() {
        // ε = 1 + ln(1e5)/(10−1).
        let eps = rdp_to_epsilon_classic(1.0, 10.0, 1e-5);
        assert!((eps - (1.0 + (1e5f64).ln() / 9.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order must exceed 1")]
    fn rejects_low_order() {
        let _ = rdp_to_epsilon(1.0, 1.0, 1e-5);
    }
}
