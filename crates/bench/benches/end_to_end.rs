//! End-to-end iteration benchmark of every training algorithm at a
//! functional scale (the Fig. 10 comparison, live).
//!
//! The table here is small enough to run under Criterion but large
//! enough (256k rows) that the eager algorithms' dense noisy update
//! visibly dominates, while SGD, EANA and LazyDP stay batch-bound —
//! the same ordering as the paper's Figure 10.

use criterion::{criterion_group, criterion_main, Criterion};
use lazydp_core::{LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{ClipStyle, DpConfig, EagerDpSgd, EanaOptimizer, Optimizer, SgdOptimizer};
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;
use std::hint::black_box;
use std::time::Duration;

const TABLES: usize = 4;
const ROWS: u64 = 65_536;
const DIM: usize = 32;
const BATCH: usize = 64;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn setup() -> (Dlrm, Vec<MiniBatch>) {
    let mut rng = Xoshiro256PlusPlus::seed_from(42);
    let model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, BATCH * 8));
    let batches = (0..8)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    (model, batches)
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_iteration");
    let dp = DpConfig::paper_default(BATCH);

    group.bench_function("SGD", |b| {
        let (mut model, batches) = setup();
        let mut opt = SgdOptimizer::new(0.05);
        let mut i = 0usize;
        b.iter(|| {
            opt.step(black_box(&mut model), &batches[i % 8], None);
            i += 1;
        });
    });

    group.bench_function("LazyDP", |b| {
        let (mut model, batches) = setup();
        let cfg = LazyDpConfig::new(dp, true);
        let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(1));
        let mut i = 0usize;
        b.iter(|| {
            opt.step(
                black_box(&mut model),
                &batches[i % 8],
                Some(&batches[(i + 1) % 8]),
            );
            i += 1;
        });
    });

    group.bench_function("LazyDP_no_ANS", |b| {
        let (mut model, batches) = setup();
        let cfg = LazyDpConfig::new(dp, false);
        let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(1));
        let mut i = 0usize;
        b.iter(|| {
            opt.step(
                black_box(&mut model),
                &batches[i % 8],
                Some(&batches[(i + 1) % 8]),
            );
            i += 1;
        });
    });

    group.bench_function("EANA", |b| {
        let (mut model, batches) = setup();
        let mut opt = EanaOptimizer::new(dp, CounterNoise::new(1));
        let mut i = 0usize;
        b.iter(|| {
            opt.step(black_box(&mut model), &batches[i % 8], None);
            i += 1;
        });
    });

    group.bench_function("DP-SGD_F", |b| {
        let (mut model, batches) = setup();
        let mut opt = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(1));
        let mut i = 0usize;
        b.iter(|| {
            opt.step(black_box(&mut model), &batches[i % 8], None);
            i += 1;
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_end_to_end
}
criterion_main!(benches);
