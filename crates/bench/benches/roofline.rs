//! Real-hardware analogue of the paper's Fig. 6 microbenchmark:
//! load each element of a large buffer, perform `N` FMA operations on
//! it, store it back — memory-bound for small `N`, compute-bound for
//! large `N`. The absolute GFLOPS differ from the paper's 20-core Xeon,
//! but the camel-curve *shape* (linear ramp → plateau) and the relative
//! position of the noise-sampling (N≈101) vs update (N=2) kernels
//! reproduce on any machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
}

/// `N` chained FMAs per element. The multiplier/addend are chosen to
/// keep values bounded so the loop cannot be folded away.
#[inline(never)]
fn stream_n_ops(buf: &mut [f32], n_ops: u32) {
    let a = 0.999_f32;
    let b = 1e-7_f32;
    for x in buf.iter_mut() {
        let mut v = *x;
        for _ in 0..n_ops {
            v = v.mul_add(a, b);
        }
        *x = v;
    }
}

fn bench_roofline(c: &mut Criterion) {
    let mut group = c.benchmark_group("roofline");
    // 32 MiB buffer: larger than any LLC here, so small-N runs are
    // genuinely memory-bound.
    let elements = 8 * 1024 * 1024usize;
    let mut buf = vec![1.0f32; elements];
    for &n in &[1u32, 2, 4, 8, 16, 32, 64, 101, 124] {
        group.throughput(Throughput::Elements(elements as u64 * u64::from(n)));
        group.bench_with_input(BenchmarkId::new("n_ops", n), &n, |bch, &n| {
            bch.iter(|| {
                stream_n_ops(black_box(&mut buf), n);
                black_box(buf[0]);
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_roofline
}
criterion_main!(benches);
