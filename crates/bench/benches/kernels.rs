//! Real-hardware kernel benchmarks: the paper's §4.3 bottleneck claims
//! demonstrated live on this machine.
//!
//! * Box–Muller Gaussian sampling is compute-bound: throughput is flat
//!   in buffer size and far below the memcpy rate.
//! * The dense noisy update streams the whole table: its time scales
//!   linearly with table size.
//! * LazyDP's lazy+ANS update touches only the next batch's unique rows:
//!   its time is *independent* of table size (the paper's Fig. 13(a)
//!   flatness, at functional scale).
//! * ANS replaces `delays` draws with one: sampling time drops by ≈ the
//!   delay factor (§5.2.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lazydp_dpsgd::counters::KernelCounters;
use lazydp_dpsgd::noise_update::dense_noisy_update;
use lazydp_embedding::{EmbeddingTable, SparseGrad};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::{fill_standard_normal, GaussianSampler, Prng, Xoshiro256PlusPlus};
use lazydp_tensor::{set_gemm_mode, GemmMode, Matrix};
use std::hint::black_box;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
}

/// The three GEMM variants at small/medium DLRM shapes, blocked
/// micro-kernels vs the naive reference kernels — the local regression
/// guard for the kernel layer (both are bitwise identical; only
/// wall-clock may differ).
fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let mk = |rows: usize, cols: usize, seed: u32| {
        Matrix::from_fn(rows, cols, |i, j| {
            let x = (i as u32)
                .wrapping_mul(2_654_435_761)
                .wrapping_add((j as u32).wrapping_mul(40_503))
                .wrapping_add(seed);
            // ReLU-like zeros so the reference zero-skip path is live.
            if x.is_multiple_of(3) {
                0.0
            } else {
                ((x % 1000) as f32 - 500.0) / 250.0
            }
        })
    };
    for &(label, m, k, n) in &[
        ("small-64x128x64", 64usize, 128usize, 64usize),
        ("medium-256x512x512", 256, 512, 512),
    ] {
        let a = mk(m, k, 1);
        let b = mk(k, n, 2);
        let at = mk(k, m, 3);
        let bt = mk(n, k, 4);
        let flops = (2 * m * k * n) as u64;
        group.throughput(Throughput::Elements(flops));
        for (mode, tag) in [
            (GemmMode::Blocked, "blocked"),
            (GemmMode::Reference, "reference"),
        ] {
            let mut out = Matrix::zeros(0, 0);
            group.bench_function(&format!("matmul/{tag}/{label}"), |bch| {
                set_gemm_mode(mode);
                bch.iter(|| {
                    black_box(&a).matmul_into(black_box(&b), &mut out);
                    black_box(out.as_slice()[0]);
                });
            });
            group.bench_function(&format!("t_matmul/{tag}/{label}"), |bch| {
                set_gemm_mode(mode);
                bch.iter(|| {
                    black_box(&at).t_matmul_into(black_box(&b), &mut out);
                    black_box(out.as_slice()[0]);
                });
            });
            group.bench_function(&format!("matmul_t/{tag}/{label}"), |bch| {
                set_gemm_mode(mode);
                bch.iter(|| {
                    black_box(&a).matmul_t_into(black_box(&bt), &mut out);
                    black_box(out.as_slice()[0]);
                });
            });
        }
    }
    set_gemm_mode(GemmMode::Blocked);
    group.finish();
}

/// Gaussian sampling throughput across buffer sizes (compute-bound ⇒
/// roughly constant ns/element).
fn bench_noise_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_sampling");
    for &n in &[1usize << 14, 1 << 17, 1 << 20] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("box_muller_fill", n), &n, |b, &n| {
            let mut rng = Xoshiro256PlusPlus::seed_from(1);
            let mut buf = vec![0.0f32; n];
            b.iter(|| {
                fill_standard_normal(&mut rng, black_box(&mut buf));
                black_box(buf[0]);
            });
        });
    }
    group.finish();
}

/// ANS vs per-step draws: one aggregated draw replaces `delays` draws.
fn bench_ans(c: &mut Criterion) {
    let mut group = c.benchmark_group("ans_vs_repeated_draws");
    let dim = 128usize;
    for &delays in &[1u64, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("repeated", delays),
            &delays,
            |b, &delays| {
                let mut rng = Xoshiro256PlusPlus::seed_from(2);
                let sampler = GaussianSampler::new(0.0, 0.01);
                let mut acc = vec![0.0f32; dim];
                b.iter(|| {
                    acc.fill(0.0);
                    for _ in 0..delays {
                        sampler.accumulate(&mut rng, 1.0, black_box(&mut acc));
                    }
                    black_box(acc[0]);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("aggregated", delays),
            &delays,
            |b, &delays| {
                let mut rng = Xoshiro256PlusPlus::seed_from(2);
                let std = 0.01 * (delays as f32).sqrt();
                let sampler = GaussianSampler::new(0.0, std);
                let mut acc = vec![0.0f32; dim];
                b.iter(|| {
                    acc.fill(0.0);
                    sampler.accumulate(&mut rng, 1.0, black_box(&mut acc));
                    black_box(acc[0]);
                });
            },
        );
    }
    group.finish();
}

/// Dense noisy update (time ∝ table size) vs LazyDP-style sparse noisy
/// update (time ∝ batch, flat in table size) — the crux of the paper.
fn bench_table_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_update");
    let dim = 64usize;
    let batch_rows = 256u64; // unique rows the batch touches
    for &rows in &[4096usize, 32_768, 131_072] {
        let grad = {
            let mut g = SparseGrad::new(dim);
            for r in 0..batch_rows {
                let _ = g.push_zeros(r * (rows as u64 / batch_rows));
            }
            g.coalesce();
            g
        };
        group.bench_with_input(
            BenchmarkId::new("dense_noisy_update", rows),
            &rows,
            |b, &rows| {
                let mut table = EmbeddingTable::zeros(rows, dim);
                let mut noise = CounterNoise::new(3);
                let mut counters = KernelCounters::new();
                let mut iter = 0u64;
                b.iter(|| {
                    iter += 1;
                    dense_noisy_update(
                        0,
                        black_box(&mut table),
                        &grad,
                        &mut noise,
                        iter,
                        1e-4,
                        0.05,
                        &mut counters,
                    );
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lazy_sparse_update", rows),
            &rows,
            |b, &rows| {
                let mut table = EmbeddingTable::zeros(rows, dim);
                let mut rng = Xoshiro256PlusPlus::seed_from(5);
                let mut buf = vec![0.0f32; dim];
                b.iter(|| {
                    // One ANS draw + scatter per touched row (delays=16).
                    let std = 1e-4f32 * 4.0;
                    for r in 0..batch_rows {
                        fill_standard_normal(&mut rng, &mut buf);
                        let row = table.row_mut(((r * 17) % rows as u64) as usize);
                        for (w, &n) in row.iter_mut().zip(buf.iter()) {
                            *w -= 0.05 * std * n;
                        }
                    }
                    black_box(table.row(0)[0]);
                });
            },
        );
    }
    group.finish();
}

/// Random row gather vs sequential copy of the same number of bytes,
/// over a table far larger than the LLC (random rows pay DRAM-page
/// penalties that sequential streams do not — the reason `sysmodel`
/// prices gathers at a degraded bandwidth).
fn bench_gather_vs_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_vs_stream");
    let dim = 128usize;
    let rows = 1 << 20; // 512 MB table: well beyond any cache here
    let table = EmbeddingTable::zeros(rows, dim);
    let mut rng = Xoshiro256PlusPlus::seed_from(7);
    let indices: Vec<u64> = (0..4096).map(|_| rng.next_below(rows as u64)).collect();
    let mut out = vec![0.0f32; 4096 * dim];
    group.bench_function("random_gather_4096_rows", |b| {
        b.iter(|| {
            for (i, &idx) in indices.iter().enumerate() {
                out[i * dim..(i + 1) * dim].copy_from_slice(table.row(idx as usize));
            }
            black_box(out[0]);
        });
    });
    group.bench_function("sequential_copy_same_bytes", |b| {
        let n = 4096 * dim;
        let mut offset = 0usize;
        b.iter(|| {
            // Walk the table so successive iterations touch cold regions.
            offset = (offset + n) % (rows * dim - n);
            out.copy_from_slice(&table.as_slice()[offset..offset + n]);
            black_box(out[0]);
        });
    });
    group.finish();
}

/// Parallel Box–Muller fill: thread scaling of the §6 multi-threaded
/// noise kernel (the paper uses TBB/OpenMP across 20 cores; this host
/// has fewer, but the per-thread efficiency shape still shows).
fn bench_parallel_noise(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_noise");
    let n = 1usize << 20;
    for &threads in &[1usize, 2, 4] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("par_fill", threads),
            &threads,
            |b, &threads| {
                let mut buf = vec![0.0f32; n];
                b.iter(|| {
                    lazydp_rng::par_fill_standard_normal(7, black_box(&mut buf), threads);
                    black_box(buf[0]);
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_gemm, bench_noise_sampling, bench_ans, bench_table_update, bench_gather_vs_stream, bench_parallel_noise
}
criterion_main!(benches);
