//! Out-of-core storage experiment: cache-capacity sweep of the paged
//! embedding backend on a Zipf trace.
//!
//! For cache capacities of {100%, 50%, 25%, 10%} of the table's pages,
//! the sweep trains the same LazyDP run once in memory and once on the
//! `lazydp_store::StoredTable` backend, recording step wall-clock, page
//! hit rate, and bytes spilled (dirty write-back traffic). Every
//! storage run's released model is asserted bitwise identical to the
//! in-memory reference — the tentpole invariant — so this experiment
//! doubles as an end-to-end check at realistic trace skew.
//!
//! Run at full scale (release) with:
//! `cargo run --release -p lazydp_bench --bin figures -- storage`.

use crate::table::Table;
use lazydp_core::{LazyDpConfig, PrivateTrainer};
use lazydp_data::{AccessDistribution, FixedBatchLoader, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::DpConfig;
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_obs::MetricsSnapshot;
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;
use lazydp_store::{StorageConfig, StoredTable};
use std::sync::Mutex;
use std::time::Instant;

/// Serializes storage-backed runs process-wide so the `store.*`
/// registry deltas measured around each run are attributable to that
/// run alone (the registry is global; concurrent tests would otherwise
/// bleed into each other's counters). Only this module creates
/// `StoredTable`s inside the bench process.
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Cache capacities measured, as a fraction of the table's total pages
/// (the {100%, 50%, 25%, 10%} sweep of the issue's acceptance
/// criteria).
pub const CACHE_FRACTIONS: [f64; 4] = [1.0, 0.5, 0.25, 0.10];

/// Builds the model and a Zipf-skewed dataset matching `cfg`'s
/// geometry. Skew is what makes paging interesting: the hot head of the
/// trace stays cached while the cold tail pages in and out.
fn setup(cfg: &DlrmConfig, batch: usize, steps: usize) -> (Dlrm, SyntheticDataset) {
    let mut rng = Xoshiro256PlusPlus::seed_from(29);
    let model = Dlrm::new(cfg.clone(), &mut rng);
    let scfg = SyntheticConfig {
        num_dense: cfg.num_dense,
        table_rows: cfg.table_rows.clone(),
        pooling: cfg.pooling,
        num_samples: batch * (steps + 2),
        distributions: cfg
            .table_rows
            .iter()
            .map(|&r| AccessDistribution::zipf(r, 0.9))
            .collect(),
        seed: 0xcafe,
    };
    (model, SyntheticDataset::new(scfg))
}

/// One storage-backed training run: returns (mean step seconds, the
/// run's `store.*` registry delta, released model). The cache's own
/// counters are not read (rule O1 keeps hot-path state write-only);
/// instead the run is bracketed by two `lazydp_obs` snapshots under
/// [`RUN_LOCK`], so the delta is exactly this run's traffic.
fn stored_run(
    model0: &Dlrm,
    ds: &SyntheticDataset,
    batch: usize,
    steps: usize,
    storage: StorageConfig,
) -> (f64, MetricsSnapshot, Dlrm) {
    let _serial = RUN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let cfg = LazyDpConfig::new(DpConfig::paper_default(batch), true).with_storage(storage);
    let loader = FixedBatchLoader::new(ds.clone(), batch);
    let before = lazydp_obs::snapshot::capture_metrics();
    let mut trainer = PrivateTrainer::make_private_stored_prefetch(
        model0.clone(),
        cfg,
        loader,
        CounterNoise::new(7),
        batch as f64 / ds.len() as f64,
    )
    .expect("spill dir must be writable");
    let t0 = Instant::now();
    let _ = trainer.train_steps(steps);
    let secs = t0.elapsed().as_secs_f64() / steps as f64;
    let released = trainer.finish();
    let dense = released.map_tables(|_, t: StoredTable| t.to_dense());
    let delta = lazydp_obs::snapshot::capture_metrics().delta_since(&before);
    (secs, delta, dense)
}

/// Hit rate out of a registry delta (0.0 when no faults were counted,
/// e.g. under `LAZYDP_OBS=off`).
fn delta_hit_rate(delta: &MetricsSnapshot) -> f64 {
    let hits = delta.counter("store.hits");
    let faults = hits + delta.counter("store.misses");
    if faults == 0 {
        0.0
    } else {
        hits as f64 / faults as f64
    }
}

/// The in-memory reference run (released model only).
fn memory_run(model0: &Dlrm, ds: &SyntheticDataset, batch: usize, steps: usize) -> Dlrm {
    let cfg = LazyDpConfig::new(DpConfig::paper_default(batch), true);
    let loader = FixedBatchLoader::new(ds.clone(), batch);
    let mut trainer = PrivateTrainer::make_private_prefetch(
        model0.clone(),
        cfg,
        loader,
        CounterNoise::new(7),
        batch as f64 / ds.len() as f64,
    );
    let _ = trainer.train_steps(steps);
    trainer.finish()
}

/// The cache-capacity sweep on an explicit model configuration.
///
/// # Panics
///
/// Panics if any storage-backed run's released model differs from the
/// in-memory reference (the bitwise tentpole invariant).
#[must_use]
pub fn storage_sweep_with(cfg: &DlrmConfig, batch: usize, timed_steps: usize) -> Table {
    let page_rows = 16usize;
    let (model0, ds) = setup(cfg, batch, timed_steps);
    let total_pages: usize = cfg
        .table_rows
        .iter()
        .map(|&r| (r as usize).div_ceil(page_rows))
        .sum();
    let pages_per_table = (cfg.table_rows[0] as usize).div_ceil(page_rows);
    let mut t = Table::new(
        "storage",
        "Out-of-core storage — LazyDP step wall-clock, hit rate, and spill traffic vs page-cache capacity (Zipf trace)",
        &[
            "cache (% of pages)",
            "cache pages/table",
            "step (ms)",
            "hit rate",
            "bytes spilled",
            "bytes loaded",
            "max abs diff vs memory",
        ],
    )
    .with_note(&format!(
        "Paged StoredTable backend ({page_rows} rows/page, {total_pages} pages across all \
         tables) vs the in-memory backend on the same Zipf-0.9 trace; every row of this \
         table asserts a bitwise-identical released model. Disk traffic is counted by the \
         clock-eviction page cache (write-backs = bytes spilled). On this container the \
         spill file usually sits in the OS page cache, so wall-clock deltas understate \
         real disk; re-run on a machine with a cold spill device for I/O-bound numbers. \
         Full-scale release run: cargo run --release -p lazydp_bench --bin figures -- \
         storage (batch {batch}, {timed_steps} timed steps)."
    ));
    let reference = memory_run(&model0, &ds, batch, timed_steps);
    for &frac in &CACHE_FRACTIONS {
        let cache_pages = ((pages_per_table as f64 * frac).round() as usize).max(1);
        let storage = StorageConfig::new()
            .with_page_rows(page_rows)
            .with_cache_pages(cache_pages);
        let (secs, delta, released) = stored_run(&model0, &ds, batch, timed_steps, storage);
        let mut diff = 0.0f32;
        for (a, b) in reference.tables.iter().zip(released.tables.iter()) {
            diff = diff.max(a.max_abs_diff(b));
        }
        assert_eq!(
            diff, 0.0,
            "storage backend at {frac}×cache must release the identical model"
        );
        t.push_row(vec![
            format!("{:.0}%", frac * 100.0),
            cache_pages.to_string(),
            format!("{:.2}", secs * 1e3),
            format!("{:.3}", delta_hit_rate(&delta)),
            delta.counter("store.bytes_spilled").to_string(),
            delta.counter("store.bytes_loaded").to_string(),
            format!("{diff}"),
        ]);
    }
    t
}

/// The registered experiment. Release builds measure a scaled-down
/// MLPerf-shaped model; debug builds (the test registry) use a tiny
/// model so the suite stays fast.
#[must_use]
pub fn storage_sweep() -> Table {
    if cfg!(debug_assertions) {
        storage_sweep_with(&DlrmConfig::tiny(2, 512, 16), 8, 2)
    } else {
        // 16k rows × 16 rows/page = 1024 pages per table, so the
        // {100, 50, 25, 10}% capacities are genuinely distinct.
        storage_sweep_with(&DlrmConfig::tiny(2, 16_384, 16), 64, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_fractions_and_proves_identity() {
        let t = storage_sweep_with(&DlrmConfig::tiny(2, 256, 8), 8, 1);
        assert_eq!(t.rows.len(), CACHE_FRACTIONS.len());
        for row in &t.rows {
            let ms: f64 = row[2].parse().expect("numeric step time");
            assert!(ms >= 0.0);
            let hit: f64 = row[3].parse().expect("numeric hit rate");
            assert!((0.0..=1.0).contains(&hit), "hit rate {hit}");
            assert_eq!(row[6], "0", "bitwise identity recorded in the table");
        }
        // Shrinking the cache can only increase loads from disk: the
        // 100% row never evicts, so its load count (distinct pages
        // touched) is the structural minimum. Skipped when
        // LAZYDP_STORE_PAGES pins every row to the same capacity —
        // concurrent-prefetch jitter then makes the rows incomparable —
        // and under LAZYDP_OBS=off, where the counter columns are zero.
        if std::env::var(lazydp_store::CACHE_PAGES_ENV).is_err() && lazydp_obs::counters_enabled() {
            let loads: Vec<u64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
            assert!(
                loads[0] <= *loads.last().unwrap(),
                "a 10% cache cannot load less than a 100% cache: {loads:?}"
            );
        }
    }
}
