//! Thread-scaling experiment: wall-clock of the LazyDP training step
//! across executor widths.
//!
//! Every hot stage of the step — the MLP forward/backward GEMMs, the
//! ghost-norm backward, and the two-phase pending-noise flush — runs on
//! the `lazydp_exec` executor, so the whole step should scale with the
//! worker count on a multi-core host (the paper's baselines are tuned
//! TBB/OpenMP multi-threaded implementations, §6). Because every kernel
//! is chunk-addressed, the *trained model* is bitwise identical at
//! every point of the sweep — only the wall-clock moves.
//!
//! Run at full scale (release) with:
//! `cargo run --release -p lazydp_bench --bin figures -- scaling`.

use crate::table::Table;
use lazydp_core::{LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{AccessDistribution, MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{DpConfig, Optimizer};
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;
use std::time::Instant;

/// Executor widths the sweep measures.
pub const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];

/// Builds a model and a uniform-trace batch stream matching `cfg`'s
/// table geometry (`steps + 2` batches: warmup lookahead plus the timed
/// window).
fn setup(cfg: &DlrmConfig, batch: usize, steps: usize) -> (Dlrm, Vec<MiniBatch>) {
    let mut rng = Xoshiro256PlusPlus::seed_from(11);
    let model = Dlrm::new(cfg.clone(), &mut rng);
    let scfg = SyntheticConfig {
        num_dense: cfg.num_dense,
        table_rows: cfg.table_rows.clone(),
        pooling: cfg.pooling,
        num_samples: batch * (steps + 2),
        distributions: cfg
            .table_rows
            .iter()
            .map(|&r| AccessDistribution::uniform(r))
            .collect(),
        seed: 0xbead,
    };
    let ds = SyntheticDataset::new(scfg);
    let batches = (0..steps + 2)
        .map(|i| ds.batch_of(&(i * batch..(i + 1) * batch).collect::<Vec<_>>()))
        .collect();
    (model, batches)
}

/// Mean seconds per LazyDP step at one executor width (1 warmup step +
/// `timed_steps` timed). Sets the process-global thread count for the
/// duration so the GEMMs follow the knob, then restores it.
fn step_seconds(model0: &Dlrm, batches: &[MiniBatch], batch: usize, threads: usize) -> f64 {
    let timed_steps = batches.len() - 2;
    let prev = lazydp_exec::global_threads();
    lazydp_exec::set_global_threads(threads);
    let dp = DpConfig::paper_default(batch).with_threads(threads);
    let cfg = LazyDpConfig::new(dp, true);
    let mut model = model0.clone();
    let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(3));
    opt.step(&mut model, &batches[0], Some(&batches[1]));
    let t0 = Instant::now();
    for i in 0..timed_steps {
        opt.step(&mut model, &batches[i + 1], Some(&batches[i + 2]));
    }
    let secs = t0.elapsed().as_secs_f64() / timed_steps as f64;
    lazydp_exec::set_global_threads(prev);
    secs
}

/// The thread-scaling sweep on an explicit model configuration.
#[must_use]
pub fn thread_scaling_with(cfg: &DlrmConfig, batch: usize, timed_steps: usize) -> Table {
    let mut t = Table::new(
        "scaling",
        "Thread scaling — LazyDP step wall-clock vs executor width (MLPerf-shape DLRM)",
        &["threads", "step (ms)", "speedup vs 1 thread"],
    )
    .with_note(&format!(
        "Chunk-addressed executor: the trained model is bitwise identical at every row \
         of this table; only wall-clock changes. Host reports {} available core(s) — \
         speedup above 1.0 requires physical cores beyond the executor width. \
         Full-scale release run: cargo run --release -p lazydp_bench --bin figures -- scaling \
         (batch {batch}, {timed_steps} timed steps).",
        lazydp_exec::available_threads(),
    ));
    let (model0, batches) = setup(cfg, batch, timed_steps);
    let base = step_seconds(&model0, &batches, batch, THREAD_POINTS[0]);
    t.push_row(vec![
        THREAD_POINTS[0].to_string(),
        format!("{:.2}", base * 1e3),
        "1.00".into(),
    ]);
    for &threads in &THREAD_POINTS[1..] {
        let secs = step_seconds(&model0, &batches, batch, threads);
        t.push_row(vec![
            threads.to_string(),
            format!("{:.2}", secs * 1e3),
            format!("{:.2}", base / secs),
        ]);
    }
    t
}

/// The registered experiment. Release builds (`figures -- scaling`)
/// measure the MLPerf model shape (26 Criteo tables, dim 128, the
/// MLPerf bottom/top MLPs — full-width GEMMs, the dominant per-step
/// cost at this scale) with the tables scaled far down. Debug builds
/// (the test registry, which only checks that the sweep runs and
/// renders) use a tiny model so the suite stays fast.
#[must_use]
pub fn thread_scaling() -> Table {
    if cfg!(debug_assertions) {
        thread_scaling_with(&DlrmConfig::tiny(4, 256, 16), 4, 1)
    } else {
        thread_scaling_with(&DlrmConfig::mlperf(1_000_000), 64, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_thread_points_with_sane_numbers() {
        let t = thread_scaling_with(&DlrmConfig::tiny(2, 64, 8), 8, 1);
        assert_eq!(t.rows.len(), THREAD_POINTS.len());
        for (row, threads) in t.rows.iter().zip(THREAD_POINTS.iter()) {
            assert_eq!(row[0], threads.to_string());
            let ms: f64 = row[1].parse().expect("numeric step time");
            assert!(ms >= 0.0);
            let speedup: f64 = row[2].parse().expect("numeric speedup");
            assert!(speedup > 0.0);
        }
    }

    // Note: no test asserts on `lazydp_exec::global_threads()` after a
    // sweep — the registry tests run sweeps concurrently in this binary,
    // so the process-global value is transiently mutated by design and
    // any equality assertion on it would be racy.
}
