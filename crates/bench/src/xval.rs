//! Cross-validation of the performance model against the functional
//! optimizers' instrumented work counters.
//!
//! The performance model is only credible if its op counts are the real
//! algorithms' op counts. This experiment runs the functional stack at a
//! small scale, averages the per-step [`KernelCounters`], and compares
//! them with the model's formulas for the *same* configuration: Gaussian
//! samples (eager = table elements + MLP params; LazyDP+ANS ≈ unique
//! next rows × dim + MLP params) and embedding rows written.

use crate::table::Table;
use lazydp_core::{LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{ClipStyle, DpConfig, EagerDpSgd, KernelCounters, Optimizer};
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;
use lazydp_sysmodel::Workload;

/// Scale of the functional run (kept small so the test suite stays
/// fast; the counter identities are scale-free).
const TABLES: usize = 4;
const ROWS: u64 = 2_000;
const DIM: usize = 16;
const BATCH: usize = 64;
const STEPS: usize = 6;

struct FunctionalRun {
    per_step: KernelCounters,
    mlp_params: u64,
}

fn run_functional(lazy: bool) -> FunctionalRun {
    let mut rng = Xoshiro256PlusPlus::seed_from(123);
    let cfg = DlrmConfig::tiny(TABLES, ROWS, DIM);
    let mut model = Dlrm::new(cfg, &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, BATCH * (STEPS + 1)));
    let batches: Vec<_> = (0..=STEPS)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    let dp = DpConfig::paper_default(BATCH);
    let mlp_params = (model.bottom.params() + model.top.params()) as u64;
    let counters = if lazy {
        let mut opt =
            LazyDpOptimizer::new(LazyDpConfig::new(dp, true), &model, CounterNoise::new(9));
        for i in 0..STEPS {
            opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
        }
        opt.counters()
    } else {
        let mut opt = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(9));
        for b in batches.iter().take(STEPS) {
            opt.step(&mut model, b, None);
        }
        opt.counters()
    };
    let steps = counters.steps;
    FunctionalRun {
        per_step: KernelCounters {
            gaussian_samples: counters.gaussian_samples / steps,
            table_rows_written: counters.table_rows_written / steps,
            table_rows_read: counters.table_rows_read / steps,
            rows_gathered: counters.rows_gathered / steps,
            duplicates_removed: counters.duplicates_removed / steps,
            history_reads: counters.history_reads / steps,
            history_writes: counters.history_writes / steps,
            steps: 1,
        },
        mlp_params,
    }
}

/// Runs the cross-validation and renders the comparison table.
#[must_use]
pub fn cross_validation() -> Table {
    let mut t = Table::new(
        "xval",
        "Cross-validation — functional kernel counters vs performance-model op counts",
        &[
            "quantity",
            "functional (measured/step)",
            "model (predicted/step)",
            "rel. err",
        ],
    )
    .with_note(
        "The functional optimizers (lazydp-dpsgd / lazydp-core) count their real work; \
         the performance model prices the same formulas. Exact agreement for eager \
         DP-SGD; LazyDP rows match in expectation (realized unique rows fluctuate \
         around the analytic E[unique]).",
    );
    let wl = Workload {
        config: DlrmConfig::tiny(TABLES, ROWS, DIM),
        batch: BATCH,
        skew: lazydp_data::SkewLevel::Random,
    };

    let eager = run_functional(false);
    let model_eager_gauss = wl.embedding_elements() + eager.mlp_params;
    push_cmp(
        &mut t,
        "DP-SGD(F): Gaussian samples",
        eager.per_step.gaussian_samples as f64,
        model_eager_gauss as f64,
    );
    push_cmp(
        &mut t,
        "DP-SGD(F): table rows written",
        eager.per_step.table_rows_written as f64,
        wl.config.total_rows() as f64,
    );

    let lazy = run_functional(true);
    let unique = wl.total_expected_unique();
    let model_lazy_gauss = unique * DIM as f64 + eager.mlp_params as f64;
    push_cmp(
        &mut t,
        "LazyDP(ANS): Gaussian samples",
        lazy.per_step.gaussian_samples as f64,
        model_lazy_gauss,
    );
    // Rows written per step: current grad rows + next noise rows ≈ 2×unique
    // (minus overlap, which the expectation formula ignores — documented).
    push_cmp(
        &mut t,
        "LazyDP(ANS): table rows written",
        lazy.per_step.table_rows_written as f64,
        2.0 * unique,
    );
    push_cmp(
        &mut t,
        "LazyDP(ANS): history reads",
        lazy.per_step.history_reads as f64,
        unique,
    );
    // The headline asymmetry: eager noise work / lazy noise work.
    push_cmp(
        &mut t,
        "noise-sampling ratio eager/lazy",
        eager.per_step.gaussian_samples as f64 / lazy.per_step.gaussian_samples as f64,
        model_eager_gauss as f64 / model_lazy_gauss,
    );
    t
}

fn push_cmp(t: &mut Table, label: &str, measured: f64, predicted: f64) {
    let rel = if predicted == 0.0 {
        0.0
    } else {
        (measured - predicted).abs() / predicted
    };
    t.push_row(vec![
        label.to_owned(),
        format!("{measured:.1}"),
        format!("{predicted:.1}"),
        format!("{:.1}%", rel * 100.0),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_match_model_within_tolerance() {
        let t = cross_validation();
        for row in &t.rows {
            let rel: f64 = row[3].trim_end_matches('%').parse().expect("numeric");
            // Eager rows are exact; LazyDP expectation rows allowed 15%.
            let bound = if row[0].starts_with("DP-SGD") {
                0.5
            } else {
                16.0
            };
            assert!(
                rel <= bound,
                "{}: measured {} vs predicted {} ({}% off)",
                row[0],
                row[1],
                row[2],
                row[3]
            );
        }
    }
}
