//! Experiment harness: regenerates every table and figure of the LazyDP
//! paper's evaluation.
//!
//! Two kinds of artifacts are produced:
//!
//! 1. **Model-scale experiments** ([`experiments`]): each paper figure
//!    (Fig. 3, 5, 6, 10–14) plus the §7.1/§7.2 in-text numbers,
//!    regenerated through the calibrated performance model of
//!    `lazydp-sysmodel` at the paper's true scale (96 GB+ models), with
//!    the paper's reported values printed alongside for comparison.
//!    Run them with `cargo run -p lazydp-bench --bin figures -- all`.
//! 2. **Real-hardware microbenchmarks** (`benches/`, Criterion): the
//!    same kernel-level claims demonstrated live on the host machine —
//!    Box–Muller sampling is compute-bound, dense noisy updates are
//!    memory-bound and scale with table size, LazyDP's lazy+ANS update
//!    does not.
//!
//! The [`xval`] module ties the two together: it runs the *functional*
//! optimizers at small scale and checks their instrumented work counters
//! against the performance model's op-count formulas.
//!
//! # Example: run one registered experiment programmatically
//!
//! ```
//! use lazydp_bench::{experiment_ids, run_experiment};
//!
//! // The §7.2 metadata-overhead table (pure sysmodel arithmetic).
//! let table = run_experiment("e12").expect("registered experiment");
//! assert!(table.markdown().contains("HistoryTable"));
//! // Every listed id has a runner.
//! assert!(experiment_ids().iter().any(|(id, _)| *id == "sharding"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adafest;
pub mod experiments;
pub mod faults;
pub mod kernels;
pub mod leak;
pub mod obs;
pub mod roofline;
pub mod scaling;
pub mod sharding;
pub mod storage;
pub mod table;
pub mod timer;
pub mod utility;
pub mod xval;

pub use experiments::{all_experiments, experiment_ids, full_report, run_experiment};
pub use table::Table;
