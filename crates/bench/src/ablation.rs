//! Ablation experiments for LazyDP's design choices (DESIGN.md calls
//! these out): ANS on/off, lookahead depth, trace skew, and the Fig. 4
//! read/write-traffic comparison — all measured **functionally** with
//! the instrumented kernels (no performance model involved).

use crate::table::Table;
use lazydp_core::{input_queue_bytes, LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{AccessDistribution, MiniBatch, SkewLevel, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{
    ClipStyle, DpConfig, EagerDpSgd, EanaOptimizer, KernelCounters, Optimizer, SgdOptimizer,
};
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;
use std::time::Instant;

const TABLES: usize = 2;
const ROWS: u64 = 32_768;
const DIM: usize = 16;
const BATCH: usize = 128;
const STEPS: usize = 8;

fn setup(skew: SkewLevel) -> (Dlrm, Vec<MiniBatch>) {
    let mut rng = Xoshiro256PlusPlus::seed_from(64);
    let model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
    let dists = (0..TABLES)
        .map(|_| AccessDistribution::for_skew(ROWS, skew))
        .collect();
    let cfg = SyntheticConfig::small(TABLES, ROWS, BATCH * (STEPS + 1)).with_distributions(dists);
    let ds = SyntheticDataset::new(cfg);
    let batches = (0..=STEPS)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    (model, batches)
}

fn run_lazy(ans: bool, skew: SkewLevel, finalize: bool) -> (KernelCounters, f64) {
    let (mut model, batches) = setup(skew);
    let cfg = LazyDpConfig::new(DpConfig::paper_default(BATCH), ans);
    let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(5));
    let t0 = Instant::now();
    for i in 0..STEPS {
        opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
    }
    if finalize {
        // The release-time flush settles every pending row — constant
        // work regardless of the trace, so the per-iteration ablations
        // exclude it and the conservation ablation includes it.
        opt.finalize_model(&mut model);
    }
    (opt.counters(), t0.elapsed().as_secs_f64())
}

/// Ablation: aggregated noise sampling on vs off (functional run).
///
/// Without ANS, total draws are conserved vs eager DP-SGD (§5.2.2) —
/// the finalize flush at iteration T draws `delays` samples per pending
/// row; with ANS every flush is a single draw.
#[must_use]
pub fn abl_ans() -> Table {
    let mut t = Table::new(
        "abl_ans",
        "Ablation — aggregated noise sampling (functional, incl. finalize flush)",
        &["variant", "Gaussian draws", "wall time", "draws vs eager"],
    )
    .with_note(
        "Eager DP-SGD draws table_elements × iterations; LazyDP(w/o ANS) conserves that \
         total (every deferred iteration is still one draw, §5.2.2); ANS collapses each \
         pending run to one draw — the compute saving that makes LazyDP whole.",
    );
    // Eager reference.
    let (mut model, batches) = setup(SkewLevel::Random);
    let mut eager = EagerDpSgd::new(
        DpConfig::paper_default(BATCH),
        ClipStyle::Fast,
        CounterNoise::new(5),
    );
    let t0 = Instant::now();
    for b in batches.iter().take(STEPS) {
        eager.step(&mut model, b, None);
    }
    let eager_time = t0.elapsed().as_secs_f64();
    let eager_draws = eager.counters().gaussian_samples;
    let fmt_t = |s: f64| format!("{:.1} ms", s * 1e3);
    t.push_row(vec![
        "DP-SGD(F) (eager)".into(),
        eager_draws.to_string(),
        fmt_t(eager_time),
        "1.00×".into(),
    ]);
    for ans in [false, true] {
        let (c, secs) = run_lazy(ans, SkewLevel::Random, true);
        t.push_row(vec![
            if ans {
                "LazyDP (ANS)"
            } else {
                "LazyDP (w/o ANS)"
            }
            .into(),
            c.gaussian_samples.to_string(),
            fmt_t(secs),
            format!("{:.2}×", c.gaussian_samples as f64 / eager_draws as f64),
        ]);
    }
    t
}

/// Ablation: trace skew vs LazyDP's actual work (functional Fig. 13(d)).
#[must_use]
pub fn abl_skew() -> Table {
    let mut t = Table::new(
        "abl_skew",
        "Ablation — trace skew vs LazyDP noise work (functional)",
        &["skew", "Gaussian draws", "rows written", "dedup'd dups"],
    )
    .with_note(
        "Higher skew ⇒ more duplicate indices per batch ⇒ fewer unique rows ⇒ less \
         noise and scatter work — the functional mechanism behind Fig. 13(d)'s \
         2.2 → 1.9× trend.",
    );
    for skew in SkewLevel::all() {
        let (c, _) = run_lazy(true, skew, false);
        t.push_row(vec![
            skew.label().into(),
            c.gaussian_samples.to_string(),
            c.table_rows_written.to_string(),
            c.duplicates_removed.to_string(),
        ]);
    }
    t
}

/// The Fig. 4 traffic comparison: embedding rows read/written per
/// iteration by each algorithm (functional counters).
#[must_use]
pub fn traffic() -> Table {
    let mut t = Table::new(
        "traffic",
        "Fig. 4 — embedding-table traffic per iteration (functional counters)",
        &[
            "algorithm",
            "rows read/iter",
            "rows written/iter",
            "Gaussian draws/iter",
        ],
    )
    .with_note(
        "SGD touches only gathered rows (Fig. 4(a)); eager DP-SGD touches every row of \
         every table (Fig. 4(b)); EANA and LazyDP restore sparse traffic — LazyDP with \
         full DP (noise rows for the *next* batch instead of none).",
    );
    let dp = DpConfig::paper_default(BATCH);
    let mut push = |name: &str, c: KernelCounters| {
        let s = c.steps.max(1);
        t.push_row(vec![
            name.into(),
            (c.table_rows_read / s).to_string(),
            (c.table_rows_written / s).to_string(),
            (c.gaussian_samples / s).to_string(),
        ]);
    };
    {
        let (mut model, batches) = setup(SkewLevel::Random);
        let mut o = SgdOptimizer::new(0.05);
        for b in batches.iter().take(STEPS) {
            o.step(&mut model, b, None);
        }
        push("SGD", o.counters());
    }
    {
        let (mut model, batches) = setup(SkewLevel::Random);
        let mut o = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(5));
        for b in batches.iter().take(STEPS) {
            o.step(&mut model, b, None);
        }
        push("DP-SGD(F)", o.counters());
    }
    {
        let (mut model, batches) = setup(SkewLevel::Random);
        let mut o = EanaOptimizer::new(dp, CounterNoise::new(5));
        for b in batches.iter().take(STEPS) {
            o.step(&mut model, b, None);
        }
        push("EANA", o.counters());
    }
    {
        let (mut model, batches) = setup(SkewLevel::Random);
        let cfg = LazyDpConfig::new(dp, true);
        let mut o = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(5));
        for i in 0..STEPS {
            o.step(&mut model, &batches[i], Some(&batches[i + 1]));
        }
        push("LazyDP", o.counters());
    }
    t
}

/// Ablation: input-queue (lookahead) depth. Depth 2 is sufficient
/// (§5.2.1); deeper queues only cost memory.
#[must_use]
pub fn abl_queue() -> Table {
    let mut t = Table::new(
        "abl_queue",
        "Ablation — InputQueue depth (paper §5.2.1: depth 2 is sufficient)",
        &[
            "queue depth",
            "prefetched batches",
            "extra memory @ paper scale",
            "noise work",
        ],
    )
    .with_note(
        "LazyDP needs visibility one batch ahead — noise owed by a row is flushed just \
         before its access regardless of how much earlier it was *known*. Deeper queues \
         therefore change no work term, only memory (batch × tables × pooling × 4 B per \
         extra slot). Measured noise draws at depth 2 are the invariant baseline.",
    );
    let (c2, _) = run_lazy(true, SkewLevel::Random, false);
    let paper_cfg = DlrmConfig::mlperf(1);
    let slot = input_queue_bytes(&paper_cfg, 2048);
    for depth in 2usize..=5 {
        let prefetched = depth - 1;
        t.push_row(vec![
            depth.to_string(),
            prefetched.to_string(),
            format!("{:.0} KB", (slot * prefetched as u64) as f64 / 1e3),
            if depth == 2 {
                format!("{} draws/run (measured)", c2.gaussian_samples)
            } else {
                "identical (work is access-time-bound)".into()
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ans_ablation_shows_conservation_and_saving() {
        let t = abl_ans();
        let eager: f64 = t.rows[0][1].parse().expect("numeric");
        let wo: f64 = t.rows[1][1].parse().expect("numeric");
        let with: f64 = t.rows[2][1].parse().expect("numeric");
        // w/o ANS conserves the eager draw count (within the MLP-noise
        // bookkeeping difference across finalize).
        assert!(
            (wo / eager - 1.0).abs() < 0.35,
            "w/o ANS should be ≈ eager: {wo} vs {eager}"
        );
        assert!(with < wo / 3.0, "ANS must cut draws hard: {with} vs {wo}");
    }

    #[test]
    fn skew_ablation_is_monotone() {
        let t = abl_skew();
        let draws: Vec<f64> = t.rows.iter().map(|r| r[1].parse().expect("num")).collect();
        for w in draws.windows(2) {
            assert!(
                w[1] <= w[0] * 1.02,
                "draws must not grow with skew: {draws:?}"
            );
        }
        assert!(draws[3] < draws[0] * 0.8, "high skew must clearly help");
    }

    #[test]
    fn traffic_matches_fig4_story() {
        let t = traffic();
        let rows_written: Vec<f64> = t.rows.iter().map(|r| r[2].parse().expect("num")).collect();
        let (sgd, dpf, eana, lazy) = (
            rows_written[0],
            rows_written[1],
            rows_written[2],
            rows_written[3],
        );
        assert!(
            dpf > 100.0 * sgd,
            "dense update must dwarf sparse: {dpf} vs {sgd}"
        );
        assert!(
            eana < dpf / 50.0 && lazy < dpf / 50.0,
            "EANA/LazyDP sparse again"
        );
        assert!(
            lazy <= 3.0 * sgd + 1.0,
            "LazyDP ≈ 2× SGD rows (grad + next noise)"
        );
    }
}
