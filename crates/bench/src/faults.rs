//! Fault-injection resilience experiment: what the storage stack
//! absorbs, what it degrades through, and what a crash costs.
//!
//! Four short disk-backed LazyDP runs, all over identical data/noise:
//!
//! 1. **clean** — no plan installed; the released model is the bitwise
//!    reference for every other run.
//! 2. **transient storm** — a deterministic rate plan fails ~5% of page
//!    reads and writes; bounded retry must absorb every one (released
//!    model bitwise identical, `fault.giveups == 0`).
//! 3. **dead spill device** — every page write fails persistently from
//!    mid-run on; retry exhausts, the table promotes itself to the
//!    in-memory backend, and training continues to the same bits.
//! 4. **kill + resume** — an injected mid-step kill, recovery from the
//!    last-good manifest entry, and replay to the end; the table
//!    reports the replay cost (steps re-run / total).
//!
//! All numbers come from `lazydp_fault` decisions and the
//! `lazydp_obs` `fault.*` counters — no wall-clock, so the table is
//! deterministic and diffable across runs (the CI fault leg uploads it
//! as `BENCH_faults.json`).
//!
//! Run with: `cargo run --release -p lazydp_bench --bin figures -- faults`

use crate::table::Table;
use lazydp_core::{Checkpoint, CheckpointStore, LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{DpConfig, Optimizer};
use lazydp_fault::{FaultKind, FaultPlan, InjectedKill, Site};
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_obs::MetricsSnapshot;
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;
use lazydp_store::{StorageConfig, StoredTable};
use std::panic::{catch_unwind, AssertUnwindSafe};

const TABLES: usize = 2;
const ROWS: u64 = 96;
const DIM: usize = 8;
const BATCH: usize = 16;
const STEPS: usize = 8;
const NOISE_SEED: u64 = 17;
const KILL_ITER: u64 = 6;

fn setup() -> (Dlrm, Vec<MiniBatch>) {
    let mut rng = Xoshiro256PlusPlus::seed_from(99);
    let model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, BATCH * (STEPS + 1)));
    let batches = (0..=STEPS)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    (model, batches)
}

fn cfg() -> LazyDpConfig {
    LazyDpConfig::new(DpConfig::new(0.9, 1.0, 0.05, BATCH), false).with_shards(2)
}

fn spill() -> StorageConfig {
    StorageConfig::new().with_page_rows(8).with_cache_pages(4)
}

/// One full disk-backed run under whatever plan is installed; returns
/// the released model (densified) and the `fault.*` counter delta.
fn stored_run(model0: &Dlrm, batches: &[MiniBatch]) -> (Dlrm, MetricsSnapshot) {
    let before = lazydp_obs::snapshot::capture_metrics();
    let storage = spill();
    let mut m = model0
        .clone()
        .try_map_tables(|_, t| StoredTable::from_dense(&t, &storage))
        .expect("spill tables");
    let mut o = LazyDpOptimizer::new(cfg(), &m, CounterNoise::new(NOISE_SEED));
    for i in 0..STEPS {
        o.step(&mut m, &batches[i], Some(&batches[i + 1]));
    }
    o.finalize_model(&mut m);
    let released = m.map_tables(|_, t| t.to_dense());
    let delta = lazydp_obs::snapshot::capture_metrics().delta_since(&before);
    (released, delta)
}

fn max_diff(a: &Dlrm, b: &Dlrm) -> f32 {
    // Plain loop, not a float fold: rule D4 pins accumulation order to
    // lazydp_tensor's primitives, and max over a handful of tables
    // doesn't warrant an allowlist entry.
    let mut worst = 0.0f32;
    for (x, y) in a.tables.iter().zip(b.tables.iter()) {
        worst = worst.max(x.max_abs_diff(y));
    }
    worst
}

fn counter(delta: &MetricsSnapshot, name: &str) -> u64 {
    delta
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Kill mid-step, resume from the checkpoint store, replay; returns the
/// released model and how many steps had to be re-run.
fn kill_resume_run(model0: &Dlrm, batches: &[MiniBatch]) -> (Dlrm, usize) {
    // The kill below is expected — keep its backtrace out of the table.
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedKill>().is_none() {
                prev(info);
            }
        }));
    });
    let dir = std::env::temp_dir().join(format!("lazydp-bench-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    lazydp_fault::install(FaultPlan::new(1).rule(Site::MidStep, KILL_ITER, FaultKind::Kill));
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let mut store = CheckpointStore::open(&dir).expect("open checkpoint dir");
        let mut m = model0.clone();
        let mut o = LazyDpOptimizer::new(cfg(), &m, CounterNoise::new(NOISE_SEED));
        for i in 0..STEPS {
            o.step(&mut m, &batches[i], Some(&batches[i + 1]));
            store.save(&Checkpoint::capture(&m, &o)).expect("save");
        }
    }));
    lazydp_fault::clear();
    let payload = attempt.expect_err("the plan must kill the run");
    assert!(
        payload.downcast_ref::<InjectedKill>().is_some(),
        "payload must be the injected kill"
    );

    let store = CheckpointStore::open(&dir).expect("reopen");
    let ckpt = store
        .resume_latest()
        .expect("resume")
        .expect("a checkpoint was published");
    let (mut m, mut o) = ckpt.restore(cfg(), CounterNoise::new(NOISE_SEED));
    let replayed = STEPS - o.iteration() as usize;
    for i in o.iteration() as usize..STEPS {
        o.step(&mut m, &batches[i], Some(&batches[i + 1]));
    }
    o.finalize_model(&mut m);
    let _ = std::fs::remove_dir_all(&dir);
    (m, replayed)
}

/// The registered `faults` experiment.
///
/// # Panics
///
/// Panics if any resilience contract is violated — a non-bitwise
/// release, a retry give-up under the transient plan, or a missing
/// degradation under the dead-device plan.
#[must_use]
pub fn fault_resilience() -> Table {
    let _serial = lazydp_fault::exclusive();
    let (model0, batches) = setup();

    lazydp_fault::clear();
    let (reference, _) = stored_run(&model0, &batches);

    // Transient storm: ~5% of page reads and writes fail once.
    lazydp_fault::install(
        FaultPlan::new(7)
            .rate_rule(Site::PageRead, 0.05, FaultKind::Transient)
            .rate_rule(Site::PageWrite, 0.05, FaultKind::Transient),
    );
    let (stormed, storm) = stored_run(&model0, &batches);
    lazydp_fault::clear();
    let storm_diff = max_diff(&reference, &stormed);
    assert_eq!(storm_diff, 0.0, "transient storm must be absorbed bitwise");
    assert_eq!(
        counter(&storm, "fault.giveups"),
        0,
        "bounded retry must absorb a 5% transient rate"
    );

    // Dead spill device: every page write fails from ordinal 24 on —
    // past the initial spill, so the failure lands mid-training.
    lazydp_fault::install(FaultPlan::new(7).rule(Site::PageWrite, 24, FaultKind::Persistent));
    let (degraded, dead) = stored_run(&model0, &batches);
    lazydp_fault::clear();
    let degraded_diff = max_diff(&reference, &degraded);
    assert_eq!(degraded_diff, 0.0, "degradation must be bitwise");

    // Kill + resume (in-memory model; the checkpoint store is the
    // subject here, not the page file).
    let (resumed, replayed) = kill_resume_run(&model0, &batches);
    let resume_diff = max_diff(&reference, &resumed);
    assert_eq!(resume_diff, 0.0, "kill+resume must release the same bits");

    let mut t = Table::new(
        "faults",
        "Fault-injection resilience — deterministic plans over a disk-backed LazyDP run",
        &["metric", "value"],
    )
    .with_note(&format!(
        "Four {STEPS}-step runs on identical data/noise: clean reference, \
         5% transient page-fault storm (seed 7), persistent page-write \
         failure at ordinal 24 (graceful degradation to the in-memory \
         backend), and an injected mid-step kill resumed from the \
         last-good manifest entry. Counters are lazydp_obs fault.* \
         deltas; all zero under LAZYDP_OBS=off. The same plans are \
         expressible via LAZYDP_FAULTS, e.g. \
         7:page.read*0.05=transient,page.write*0.05=transient. \
         JSON export: cargo run --release -p lazydp_bench --bin figures \
         -- json faults > BENCH_faults.json.",
    ));
    t.push_row(vec!["steps per run".into(), STEPS.to_string()]);
    t.push_row(vec![
        "storm: faults injected".into(),
        counter(&storm, "fault.injected").to_string(),
    ]);
    t.push_row(vec![
        "storm: retries".into(),
        counter(&storm, "fault.retries").to_string(),
    ]);
    t.push_row(vec![
        "storm: give-ups".into(),
        counter(&storm, "fault.giveups").to_string(),
    ]);
    t.push_row(vec![
        "storm: released max |Δ| vs clean".into(),
        format!("{storm_diff}"),
    ]);
    t.push_row(vec![
        "dead device: degradations".into(),
        counter(&dead, "fault.degradations").to_string(),
    ]);
    t.push_row(vec![
        "dead device: released max |Δ| vs clean".into(),
        format!("{degraded_diff}"),
    ]);
    t.push_row(vec![
        "kill+resume: steps replayed".into(),
        format!("{replayed} of {STEPS}"),
    ]);
    t.push_row(vec![
        "kill+resume: released max |Δ| vs clean".into(),
        format!("{resume_diff}"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_resilience_contracts_hold() {
        // The experiment asserts its own contracts (bitwise releases,
        // zero give-ups, degradation fired); running it is the test.
        let t = fault_resilience();
        assert_eq!(t.id, "faults");
        assert!(t.rows.len() >= 8, "all four runs must be tabulated");
    }
}
