//! One runner per paper artifact. Every runner prints our model's
//! prediction next to the value the paper reports (where the paper
//! quotes one), so EXPERIMENTS.md can be generated directly from
//! [`full_report`].

use crate::table::{fmt_ratio, fmt_seconds, Table};
use crate::xval;
use lazydp_data::SkewLevel;
use lazydp_model::DlrmConfig;
use lazydp_sysmodel::{
    effective_avx_gflops, estimate, Algorithm, IterationEstimate, SystemSpec, Workload,
};

fn spec() -> SystemSpec {
    SystemSpec::paper_default()
}

fn est(alg: Algorithm, wl: &Workload) -> Option<IterationEstimate> {
    estimate(alg, wl, &spec()).ok()
}

fn total(alg: Algorithm, wl: &Workload) -> Option<f64> {
    est(alg, wl).map(|e| e.breakdown.total())
}

/// SGD at the default workload (96 GB, batch 2048) — the universal
/// normalization baseline of the paper's figures.
fn sgd_baseline() -> f64 {
    total(Algorithm::Sgd, &Workload::mlperf_default(2048)).expect("SGD fits")
}

fn norm_cell(alg: Algorithm, wl: &Workload, base: f64) -> String {
    match total(alg, wl) {
        Some(t) => fmt_ratio(t / base),
        None => "OOM".to_owned(),
    }
}

/// Fig. 3: end-to-end training-time breakdown of SGD vs DP-SGD(B/R/F)
/// across embedding-table sizes.
#[must_use]
pub fn fig3() -> Table {
    let mut t = Table::new(
        "fig3",
        "Fig. 3 — SGD vs DP-SGD(B/R/F) end-to-end time across table sizes (normalized to SGD @ 96 GB)",
        &[
            "table size",
            "algorithm",
            "fwd",
            "bwd(per-example)",
            "bwd(per-batch)",
            "model update",
            "other",
            "total ×SGD",
        ],
    )
    .with_note(
        "Paper shape: DP-SGD time grows ~linearly with table size (≈ 260× SGD at 96 GB); \
         the B/R/F gap is visible at 96 MB and vanishes at 96 GB (< 0.3% in the paper) \
         because the dense noisy model update dominates everything.",
    );
    let base = sgd_baseline();
    let sizes: [(&str, u64); 4] = [
        ("96 MB", 1000),
        ("960 MB", 100),
        ("9.6 GB", 10),
        ("96 GB", 1),
    ];
    // The single SGD reference bar.
    let wl_sgd = Workload::mlperf_default(2048);
    if let Some(e) = est(Algorithm::Sgd, &wl_sgd) {
        let b = e.breakdown;
        t.push_row(vec![
            "96 GB".into(),
            "SGD".into(),
            fmt_seconds(b.fwd),
            fmt_seconds(b.bwd_per_example),
            fmt_seconds(b.bwd_per_batch),
            fmt_seconds(b.model_update()),
            fmt_seconds(b.other),
            fmt_ratio(b.total() / base),
        ]);
    }
    for (label, div) in sizes {
        let wl = Workload::mlperf_default(2048).with_config(DlrmConfig::mlperf(div));
        for alg in [Algorithm::DpSgdB, Algorithm::DpSgdR, Algorithm::DpSgdF] {
            if let Some(e) = est(alg, &wl) {
                let b = e.breakdown;
                t.push_row(vec![
                    label.into(),
                    alg.label().into(),
                    fmt_seconds(b.fwd),
                    fmt_seconds(b.bwd_per_example),
                    fmt_seconds(b.bwd_per_batch),
                    fmt_seconds(b.model_update()),
                    fmt_seconds(b.other),
                    fmt_ratio(b.total() / base),
                ]);
            }
        }
    }
    t
}

/// Fig. 5: model-update latency breakdown for DP-SGD across table sizes.
#[must_use]
pub fn fig5() -> Table {
    let mut t = Table::new(
        "fig5",
        "Fig. 5 — DP-SGD model-update latency breakdown vs table size",
        &[
            "table size",
            "noise sampling %",
            "noisy grad gen %",
            "noisy grad update %",
            "else %",
            "sampling+update %",
            "update latency (× 96 MB)",
        ],
    )
    .with_note(
        "Paper: noise sampling + noisy gradient update reach 83.1% of the model-update \
         stage at 96 GB; model-update latency grows ~linearly with table size.",
    );
    let sizes: [(&str, u64); 4] = [
        ("96 MB", 1000),
        ("960 MB", 100),
        ("9.6 GB", 10),
        ("96 GB", 1),
    ];
    let mut base_update = None;
    for (label, div) in sizes {
        let wl = Workload::mlperf_default(2048).with_config(DlrmConfig::mlperf(div));
        let b = est(Algorithm::DpSgdF, &wl).expect("fits").breakdown;
        let update_total = b.model_update();
        let else_t = update_total - b.noise_sampling - b.noisy_grad_gen - b.noisy_grad_update;
        let base = *base_update.get_or_insert(update_total);
        let pct = |x: f64| format!("{:.1}%", 100.0 * x / update_total);
        t.push_row(vec![
            label.into(),
            pct(b.noise_sampling),
            pct(b.noisy_grad_gen),
            pct(b.noisy_grad_update),
            pct(else_t),
            pct(b.noise_sampling + b.noisy_grad_update),
            fmt_ratio(update_total / base),
        ]);
    }
    t
}

/// Fig. 6: effective AVX throughput vs compute ops per loaded vector.
#[must_use]
pub fn fig6() -> Table {
    let mut t = Table::new(
        "fig6",
        "Fig. 6 — effective AVX throughput vs AVX compute ops per vector (roofline)",
        &["N (AVX ops)", "effective GFLOPS", "regime", "annotation"],
    )
    .with_note(
        "Paper: the Box–Muller noise-sampling kernel sits at N = 101 and achieves \
         ≈ 215 GFLOPS (81% of peak, compute-bound); the noisy-gradient update sits at \
         N = 2, deep in the memory-bound ramp. A real-hardware analogue of this sweep \
         runs in `cargo bench -p lazydp-bench --bench roofline`.",
    );
    let s = spec();
    let ridge = 215.0 * 64.0 / 8.0 / (s.stream_bw() / 1e9); // informational only
    let _ = ridge;
    for n in [0u32, 1, 2, 4, 8, 16, 24, 32, 48, 64, 80, 101, 112, 124] {
        let g = effective_avx_gflops(&s, n);
        let compute_bound = g > 0.99 * s.avx_eff_flops() / 1e9;
        let annotation = match n {
            2 => "noisy gradient update kernel",
            101 => "Box–Muller noise sampling (paper: 215 GFLOPS)",
            _ => "",
        };
        t.push_row(vec![
            n.to_string(),
            format!("{g:.1}"),
            if compute_bound {
                "compute-bound"
            } else {
                "memory-bound"
            }
            .into(),
            annotation.into(),
        ]);
    }
    t
}

const FIG10_BATCHES: [usize; 3] = [1024, 2048, 4096];

/// Fig. 10: end-to-end time of SGD / LazyDP / LazyDP(w/o ANS) /
/// DP-SGD(F) across batch sizes.
#[must_use]
pub fn fig10() -> Table {
    let mut t = Table::new(
        "fig10",
        "Fig. 10 — end-to-end training time (normalized to SGD @ batch 2048)",
        &["algorithm", "batch", "ours ×SGD@2048", "paper ×SGD@2048"],
    )
    .with_note(
        "Paper quotes: DP-SGD(F) ≈ 258–260, LazyDP(w/o ANS) ≈ 150–151, LazyDP 1.7/2.2/3.1, \
         SGD 0.7/1.0/1.6; LazyDP incurs only 1.96–2.42× over SGD (§7.1).",
    );
    let base = sgd_baseline();
    let paper: &[(Algorithm, [&str; 3])] = &[
        (Algorithm::Sgd, ["0.7", "1.0", "1.6"]),
        (Algorithm::LazyDp { ans: true }, ["1.7", "2.2", "3.1"]),
        (Algorithm::LazyDp { ans: false }, ["151", "151", "150"]),
        (Algorithm::DpSgdF, ["260", "259", "258"]),
    ];
    for (alg, refs) in paper {
        for (i, &batch) in FIG10_BATCHES.iter().enumerate() {
            let wl = Workload::mlperf_default(batch);
            t.push_row(vec![
                alg.label().into(),
                batch.to_string(),
                norm_cell(*alg, &wl, base),
                refs[i].into(),
            ]);
        }
    }
    t
}

/// Fig. 11: LazyDP's latency breakdown, including its pure overhead.
#[must_use]
pub fn fig11() -> Table {
    let mut t = Table::new(
        "fig11",
        "Fig. 11 — LazyDP training-time breakdown (batch 2048, 96 GB)",
        &["stage", "seconds", "% of total"],
    )
    .with_note(
        "Paper: no single stage dominates; LazyDP's own overhead (dedup of next-batch \
         indices 61% / HistoryTable read + ANS σ 22% / HistoryTable update 17%) is ≈ 15% \
         of end-to-end time.",
    );
    let wl = Workload::mlperf_default(2048);
    let b = est(Algorithm::LazyDp { ans: true }, &wl)
        .expect("fits")
        .breakdown;
    let tot = b.total();
    for (label, v) in b.labeled() {
        t.push_row(vec![
            label.into(),
            fmt_seconds(v),
            format!("{:.1}%", 100.0 * v / tot),
        ]);
    }
    let oh = b.lazydp_overhead();
    t.push_row(vec![
        "LazyDP overhead (dedup+history)".into(),
        fmt_seconds(oh),
        format!("{:.1}% (paper ≈ 15%)", 100.0 * oh / tot),
    ]);
    t.push_row(vec![
        "overhead split dedup/read/write".into(),
        format!(
            "{:.0}/{:.0}/{:.0}",
            100.0 * b.grad_coalesce / oh,
            100.0 * b.history_read / oh,
            100.0 * b.history_write / oh
        ),
        "paper 61/22/17".into(),
    ]);
    t
}

/// Fig. 12: energy, normalized to SGD at batch 2048.
#[must_use]
pub fn fig12() -> Table {
    let mut t = Table::new(
        "fig12",
        "Fig. 12 — energy consumption (normalized to SGD @ batch 2048)",
        &[
            "algorithm",
            "batch",
            "ours ×SGD@2048",
            "paper ×SGD@2048",
            "avg power (W)",
        ],
    )
    .with_note(
        "Paper: DP-SGD(F) burns ≈ 353–356× SGD's energy (its AVX-saturated phases draw \
         more power than SGD's mixed phases); LazyDP lands at 1.8–3.0×, an average 155× \
         energy saving vs DP-SGD(F).",
    );
    let base = est(Algorithm::Sgd, &Workload::mlperf_default(2048))
        .expect("fits")
        .energy_j;
    let paper: &[(Algorithm, [&str; 3])] = &[
        (Algorithm::Sgd, ["0.7", "1.0", "1.5"]),
        (Algorithm::LazyDp { ans: true }, ["1.8", "2.3", "3.0"]),
        (Algorithm::DpSgdF, ["353.1", "353.1", "355.7"]),
    ];
    for (alg, refs) in paper {
        for (i, &batch) in FIG10_BATCHES.iter().enumerate() {
            let wl = Workload::mlperf_default(batch);
            let e = est(*alg, &wl).expect("fits");
            t.push_row(vec![
                alg.label().into(),
                batch.to_string(),
                fmt_ratio(e.energy_j / base),
                refs[i].into(),
                format!("{:.0}", e.avg_power_w()),
            ]);
        }
    }
    t
}

/// Fig. 13(a): embedding-table-size sensitivity incl. the 192 GB OOM.
#[must_use]
pub fn fig13a() -> Table {
    let mut t = Table::new(
        "fig13a",
        "Fig. 13(a) — table-size sensitivity (normalized to SGD @ 96 GB)",
        &["size", "SGD", "LazyDP", "DP-SGD(F)", "paper (SGD/LazyDP/F)"],
    )
    .with_note(
        "Paper: SGD and LazyDP are flat in table size; DP-SGD(F) scales linearly \
         (68.3/129.2/259.2) and goes OOM at 192 GB because the dense noisy gradient \
         doubles the 192 GB footprint past the 256 GB DRAM.",
    );
    let base = sgd_baseline();
    let mk = |mult: u64, div: u64| -> Workload {
        let mut cfg = DlrmConfig::mlperf(div);
        if mult > 1 {
            let rows = cfg.table_rows.iter().map(|&r| r * mult).collect();
            cfg = cfg.with_table_rows(rows);
        }
        Workload::mlperf_default(2048).with_config(cfg)
    };
    let points: [(&str, u64, u64, &str); 4] = [
        ("24 GB", 1, 4, "0.9 / 2.1 / 68.3"),
        ("48 GB", 1, 2, "0.9 / 2.1 / 129.2"),
        ("96 GB", 1, 1, "1.0 / 2.2 / 259.2"),
        ("192 GB", 2, 1, "1.0 / 2.3 / OOM"),
    ];
    for (label, mult, div, paper) in points {
        let wl = mk(mult, div);
        t.push_row(vec![
            label.into(),
            norm_cell(Algorithm::Sgd, &wl, base),
            norm_cell(Algorithm::LazyDp { ans: true }, &wl, base),
            norm_cell(Algorithm::DpSgdF, &wl, base),
            paper.into(),
        ]);
    }
    t
}

/// Fig. 13(b): pooling-factor sensitivity.
#[must_use]
pub fn fig13b() -> Table {
    let mut t = Table::new(
        "fig13b",
        "Fig. 13(b) — pooling-factor sensitivity (normalized to SGD @ pooling 1)",
        &[
            "pooling",
            "SGD",
            "LazyDP",
            "DP-SGD(F)",
            "LazyDP speedup vs F",
            "paper (SGD/LazyDP/F)",
        ],
    )
    .with_note(
        "Paper: larger pooling slows SGD and LazyDP (more gathers) while DP-SGD(F) is \
         already table-bound, so the gap narrows — but even at pooling 30 LazyDP keeps \
         a 16.7× speedup.",
    );
    let base_wl = Workload::mlperf_default(2048);
    let base = total(Algorithm::Sgd, &base_wl).expect("fits");
    let points: [(usize, &str); 4] = [
        (1, "1.0 / 2.2 / 259.2"),
        (10, "3.2 / 8.0 / 259.2"),
        (20, "5.0 / 13.5 / 262.2"),
        (30, "6.5 / 15.8 / 262.8"),
    ];
    for (pool, paper) in points {
        let wl =
            Workload::mlperf_default(2048).with_config(DlrmConfig::mlperf(1).with_pooling(pool));
        let lazy = total(Algorithm::LazyDp { ans: true }, &wl).expect("fits");
        let f = total(Algorithm::DpSgdF, &wl).expect("fits");
        t.push_row(vec![
            pool.to_string(),
            norm_cell(Algorithm::Sgd, &wl, base),
            fmt_ratio(lazy / base),
            fmt_ratio(f / base),
            format!("{}×", fmt_ratio(f / lazy)),
            paper.into(),
        ]);
    }
    t
}

/// Fig. 13(c): alternative DLRM configurations (RMC1/2/3).
#[must_use]
pub fn fig13c() -> Table {
    let mut t = Table::new(
        "fig13c",
        "Fig. 13(c) — RMC1/RMC2/RMC3 model configurations (each normalized to its own SGD)",
        &["model", "SGD", "LazyDP", "DP-SGD(F)", "paper (LazyDP/F)"],
    )
    .with_note(
        "Paper: LazyDP averages 52.7× speedup across RMC variants (LazyDP 3.8/3.8/2.6, \
         DP-SGD(F) 98.0/28.2/329.1). Our RMC presets are documented approximations of \
         the DeepRecSys classes (DESIGN.md); the ordering — RMC3 worst for DP-SGD(F), \
         RMC2 mildest — is the reproduced claim.",
    );
    let points: [(&str, DlrmConfig, &str); 3] = [
        ("RMC1", DlrmConfig::rmc1(1), "3.8 / 98.0"),
        ("RMC2", DlrmConfig::rmc2(1), "3.8 / 28.2"),
        ("RMC3", DlrmConfig::rmc3(1), "2.6 / 329.1"),
    ];
    for (label, cfg, paper) in points {
        let wl = Workload::mlperf_default(2048).with_config(cfg);
        let sgd = total(Algorithm::Sgd, &wl).expect("fits");
        t.push_row(vec![
            label.into(),
            "1.00".into(),
            norm_cell(Algorithm::LazyDp { ans: true }, &wl, sgd),
            norm_cell(Algorithm::DpSgdF, &wl, sgd),
            paper.into(),
        ]);
    }
    t
}

/// Fig. 13(d): dataset-skew sensitivity.
#[must_use]
pub fn fig13d() -> Table {
    let mut t = Table::new(
        "fig13d",
        "Fig. 13(d) — trace-skew sensitivity (normalized to SGD @ Random)",
        &[
            "skew",
            "SGD",
            "LazyDP",
            "DP-SGD(F)",
            "unique rows/iter",
            "paper (SGD/LazyDP/F)",
        ],
    )
    .with_note(
        "Paper: DP-SGD(F) is skew-insensitive (it always touches the whole table); \
         LazyDP gets slightly *faster* with skew (fewer unique rows to flush): \
         2.2/2.1/2.1/1.9. Skews are Zipf traces calibrated so 90% of accesses hit \
         36%/10%/0.6% of rows (§7.3).",
    );
    let base = sgd_baseline();
    let paper = [
        "1.0 / 2.2 / 259.2",
        "0.9 / 2.1 / 260.3",
        "0.9 / 2.1 / 259.6",
        "1.0 / 1.9 / 261.9",
    ];
    for (i, skew) in SkewLevel::all().into_iter().enumerate() {
        let wl = Workload::mlperf_default(2048).with_skew(skew);
        t.push_row(vec![
            skew.label().into(),
            norm_cell(Algorithm::Sgd, &wl, base),
            norm_cell(Algorithm::LazyDp { ans: true }, &wl, base),
            norm_cell(Algorithm::DpSgdF, &wl, base),
            format!("{:.0}", wl.total_expected_unique()),
            paper[i].into(),
        ]);
    }
    t
}

/// Fig. 14: LazyDP vs EANA.
#[must_use]
pub fn fig14() -> Table {
    let mut t = Table::new(
        "fig14",
        "Fig. 14 — LazyDP vs EANA (normalized to SGD @ batch 2048)",
        &["algorithm", "batch", "ours", "paper"],
    )
    .with_note(
        "Paper: LazyDP incurs only 27–37% overhead over EANA while providing full \
         DP-SGD privacy (EANA never noises untouched rows, leaking which features never \
         occur — §2.5/§7.4).",
    );
    let base = sgd_baseline();
    let paper: &[(Algorithm, [&str; 3])] = &[
        (Algorithm::Sgd, ["0.7", "1.0", "1.6"]),
        (Algorithm::Eana, ["1.3", "1.6", "2.4"]),
        (Algorithm::LazyDp { ans: true }, ["1.7", "2.2", "3.1"]),
        (Algorithm::DpSgdF, ["257.6", "259.2", "260.0"]),
    ];
    for (alg, refs) in paper {
        for (i, &batch) in FIG10_BATCHES.iter().enumerate() {
            let wl = Workload::mlperf_default(batch);
            t.push_row(vec![
                alg.label().into(),
                batch.to_string(),
                norm_cell(*alg, &wl, base),
                refs[i].into(),
            ]);
        }
    }
    t
}

/// §7.2: LazyDP's metadata overheads.
#[must_use]
pub fn e12_overheads() -> Table {
    let mut t = Table::new(
        "e12",
        "§7.2 — LazyDP implementation overheads (default 96 GB model, batch 2048)",
        &["structure", "ours", "paper"],
    )
    .with_note("Both structures total < 1% of the model size (paper §7.2).");
    let cfg = DlrmConfig::mlperf(1);
    let report = lazydp_core::OverheadReport::for_config(&cfg, 2048);
    t.push_row(vec![
        "InputQueue (prefetched batch)".into(),
        format!("{:.0} KB", report.input_queue_bytes as f64 / 1e3),
        "213 KB".into(),
    ]);
    t.push_row(vec![
        "HistoryTable".into(),
        format!("{:.0} MB", report.history_table_bytes as f64 / 1e6),
        "751 MB".into(),
    ]);
    t.push_row(vec![
        "total vs model size".into(),
        format!("{:.2}%", 100.0 * report.fraction_of_model()),
        "< 1%".into(),
    ]);
    t
}

/// §7.1: stage-level latency-reduction factors of LazyDP vs DP-SGD(F).
#[must_use]
pub fn e13_reductions() -> Table {
    let mut t = Table::new(
        "e13",
        "§7.1 — LazyDP stage-level latency reductions vs DP-SGD(F) (batch 2048, 96 GB)",
        &["stage", "DP-SGD(F)", "LazyDP", "reduction", "paper"],
    )
    .with_note(
        "Paper: lazy noise update + ANS cut noise sampling ≈ 1081× and the noisy \
         gradient update ≈ 418×, leaving no dominant bottleneck.",
    );
    let wl = Workload::mlperf_default(2048);
    let f = est(Algorithm::DpSgdF, &wl).expect("fits").breakdown;
    let l = est(Algorithm::LazyDp { ans: true }, &wl)
        .expect("fits")
        .breakdown;
    t.push_row(vec![
        "noise sampling".into(),
        fmt_seconds(f.noise_sampling),
        fmt_seconds(l.noise_sampling),
        format!("{}×", fmt_ratio(f.noise_sampling / l.noise_sampling)),
        "1081×".into(),
    ]);
    t.push_row(vec![
        "noisy gradient update".into(),
        fmt_seconds(f.noisy_grad_update),
        fmt_seconds(l.noisy_grad_update),
        format!("{}×", fmt_ratio(f.noisy_grad_update / l.noisy_grad_update)),
        "418×".into(),
    ]);
    t.push_row(vec![
        "end-to-end".into(),
        fmt_seconds(f.total()),
        fmt_seconds(l.total()),
        format!("{}×", fmt_ratio(f.total() / l.total())),
        "85–155× (avg 119×)".into(),
    ]);
    t
}

/// The experiment registry: `(id, description)`.
#[must_use]
pub fn experiment_ids() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fig3", "SGD vs DP-SGD(B/R/F) across table sizes"),
        ("fig5", "DP-SGD model-update latency breakdown"),
        ("fig6", "AVX roofline microbenchmark curve"),
        (
            "fig10",
            "end-to-end time: SGD/LazyDP/LazyDP(w/o ANS)/DP-SGD(F)",
        ),
        ("fig11", "LazyDP latency breakdown + overhead split"),
        ("fig12", "energy consumption"),
        ("fig13a", "table-size sensitivity (+OOM)"),
        ("fig13b", "pooling-factor sensitivity"),
        ("fig13c", "RMC1/2/3 model configurations"),
        ("fig13d", "trace-skew sensitivity"),
        ("fig14", "LazyDP vs EANA"),
        ("e12", "§7.2 metadata overheads"),
        ("e13", "§7.1 stage-level reduction factors"),
        (
            "xval",
            "functional-counters vs performance-model cross-validation",
        ),
        ("leak", "EANA canary-detection attack (functional)"),
        (
            "traffic",
            "Fig. 4 embedding traffic per algorithm (functional)",
        ),
        (
            "abl_ans",
            "ablation: aggregated noise sampling on/off (functional)",
        ),
        (
            "abl_skew",
            "ablation: trace skew vs LazyDP work (functional)",
        ),
        ("abl_queue", "ablation: InputQueue depth"),
        (
            "utility",
            "privacy-utility trade-off: sigma vs AUC (functional)",
        ),
        (
            "adafest",
            "DP-AdaFEST vs eager/LazyDP: noise traffic vs table size (functional)",
        ),
        (
            "scaling",
            "thread scaling: LazyDP step wall-clock vs executor width",
        ),
        (
            "sharding",
            "shard scaling: LazyDP step wall-clock vs sparse-state shard count",
        ),
        (
            "storage",
            "out-of-core storage: page-cache capacity sweep (hit rate, spill bytes, bitwise identity)",
        ),
        (
            "kernels",
            "kernel layer: blocked-GEMM GFLOP/s, single-pass Gaussian samples/s, step before/after",
        ),
        (
            "obs",
            "observability rollup: lazydp_obs registry delta across a LazyDP + DP-AdaFEST run",
        ),
        (
            "faults",
            "fault-injection resilience: transient storm, dead spill device, kill+resume replay cost",
        ),
        (
            "roofline",
            "roofline: forward/backward/fused-clipped GFLOP/s vs measured FMA peak",
        ),
    ]
}

/// Runs one experiment by id.
#[must_use]
pub fn run_experiment(id: &str) -> Option<Table> {
    Some(match id {
        "fig3" => fig3(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13a" => fig13a(),
        "fig13b" => fig13b(),
        "fig13c" => fig13c(),
        "fig13d" => fig13d(),
        "fig14" => fig14(),
        "e12" => e12_overheads(),
        "e13" => e13_reductions(),
        "xval" => xval::cross_validation(),
        "leak" => crate::leak::leak_experiment(),
        "traffic" => crate::ablation::traffic(),
        "abl_ans" => crate::ablation::abl_ans(),
        "abl_skew" => crate::ablation::abl_skew(),
        "abl_queue" => crate::ablation::abl_queue(),
        "utility" => crate::utility::utility_tradeoff(),
        "adafest" => crate::adafest::adafest_traffic(),
        "scaling" => crate::scaling::thread_scaling(),
        "sharding" => crate::sharding::shard_scaling(),
        "storage" => crate::storage::storage_sweep(),
        "kernels" => crate::kernels::kernel_throughput(),
        "obs" => crate::obs::obs_rollup(),
        "faults" => crate::faults::fault_resilience(),
        "roofline" => crate::roofline::roofline(),
        _ => return None,
    })
}

/// Runs every experiment in registry order.
#[must_use]
pub fn all_experiments() -> Vec<Table> {
    experiment_ids()
        .iter()
        .map(|(id, _)| run_experiment(id).expect("registered id"))
        .collect()
}

/// The full markdown report (the body of EXPERIMENTS.md).
#[must_use]
pub fn full_report() -> String {
    let mut out = String::new();
    for t in all_experiments() {
        out.push_str(&t.markdown());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ids = experiment_ids();
        let set: std::collections::HashSet<_> = ids.iter().map(|(i, _)| i).collect();
        assert_eq!(set.len(), ids.len(), "duplicate experiment ids");
        for (id, _) in &ids {
            assert!(run_experiment(id).is_some(), "missing runner for {id}");
        }
        assert!(run_experiment("nope").is_none());
    }

    #[test]
    fn fig10_reproduces_headline_ratios() {
        let t = fig10();
        // DP-SGD(F) @ 2048 row: ours must be within the paper's ballpark.
        let row = t
            .rows
            .iter()
            .find(|r| r[0] == "DP-SGD(F)" && r[1] == "2048")
            .expect("row exists");
        let ours: f64 = row[2].parse().expect("numeric");
        assert!((200.0..330.0).contains(&ours), "DP-SGD(F) ratio {ours}");
        let lazy = t
            .rows
            .iter()
            .find(|r| r[0] == "LazyDP" && r[1] == "2048")
            .expect("row exists");
        let ours: f64 = lazy[2].parse().expect("numeric");
        assert!((1.5..3.2).contains(&ours), "LazyDP ratio {ours}");
    }

    #[test]
    fn fig13a_reports_oom_exactly_where_paper_does() {
        let t = fig13a();
        let row192 = t.rows.iter().find(|r| r[0] == "192 GB").expect("row");
        assert_eq!(row192[3], "OOM", "DP-SGD(F) must OOM at 192 GB");
        assert_ne!(row192[1], "OOM", "SGD must fit at 192 GB");
        assert_ne!(row192[2], "OOM", "LazyDP must fit at 192 GB");
        let row96 = t.rows.iter().find(|r| r[0] == "96 GB").expect("row");
        assert_ne!(row96[3], "OOM");
    }

    #[test]
    fn fig5_fraction_near_paper_value() {
        let t = fig5();
        let last = t.rows.last().expect("rows");
        let pct: f64 = last[5].trim_end_matches('%').parse().expect("numeric");
        assert!(
            (80.0..87.0).contains(&pct),
            "sampling+update {pct}% (paper 83.1%)"
        );
    }

    #[test]
    fn all_tables_render_nonempty_markdown() {
        for t in all_experiments() {
            assert!(!t.rows.is_empty(), "{} has no rows", t.id);
            let md = t.markdown();
            assert!(md.contains(&t.id));
            assert!(md.len() > 100);
        }
    }
}
