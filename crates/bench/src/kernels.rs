//! Kernel-layer experiment: before/after throughput of the PR's three
//! optimizations, measured live on this machine.
//!
//! * **GEMM** — single-thread GFLOP/s of the register-blocked
//!   micro-kernels versus the naive reference kernels (the pre-blocking
//!   loop structure), on small and medium DLRM-shaped products. The
//!   two implementations are bitwise identical (see
//!   `lazydp_tensor::gemm`), so the speedup column is pure wall-clock.
//! * **DP backward** — the fused ghost-clipping backward (one chain:
//!   ghost norms + clip + clipped aggregate, clip factors applied in
//!   the weight-grad GEMM epilogue) versus the two-pass
//!   ghost-norms-then-reweighted-backward it replaces. Bitwise
//!   identical outputs; 2 GEMMs per layer instead of 3.
//! * **Gaussian sampling** — single-pass `GaussianSampler::fill`
//!   (affine folded into the Box–Muller conversion, batched uniforms)
//!   versus the historical two-pass fill-then-scale sweep.
//! * **Training step** — LazyDP step wall-clock (and ns per sample)
//!   with the reference kernels versus the blocked kernels, steady
//!   state (arena warm), single thread.
//!
//! Run at full scale (release) with
//! `cargo run --release -p lazydp_bench --bin figures -- kernels`
//! (JSON: `figures -- json kernels` → `BENCH_kernels.json` in CI).

use crate::table::Table;
use lazydp_core::{LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{AccessDistribution, MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{DpConfig, Optimizer};
use lazydp_model::{Dlrm, DlrmConfig, Mlp, MlpGrads};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::{fill_standard_normal, GaussianSampler, Xoshiro256PlusPlus};
use lazydp_tensor::{set_gemm_mode, GemmMode, Matrix};
use std::time::Instant;

/// Timing rounds per measurement; the minimum round is reported
/// (standard best-of-N, which rejects scheduler/neighbour noise — this
/// container shares one CPU).
const TIMING_ROUNDS: usize = 5;

/// Best-of-[`TIMING_ROUNDS`] mean seconds per call of `f` (one untimed
/// warm-up call).
fn time_per_call(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..TIMING_ROUNDS {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn bench_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i as u32)
            .wrapping_mul(2_654_435_761)
            .wrapping_add((j as u32).wrapping_mul(40_503))
            .wrapping_add(seed);
        let v = ((x % 1000) as f32 - 500.0) / 250.0;
        // ReLU-like sparsity so the reference kernels' zero-skip fast
        // path gets its best case.
        if x.is_multiple_of(3) {
            0.0
        } else {
            v
        }
    })
}

/// One GEMM variant timed in both kernel modes at one shape; returns
/// `(reference GFLOP/s, blocked GFLOP/s)`.
fn gemm_point(flops: f64, reps: usize, mut run: impl FnMut(&mut Matrix)) -> (f64, f64) {
    let mut out = Matrix::zeros(0, 0);
    set_gemm_mode(GemmMode::Reference);
    let t_ref = time_per_call(reps, || run(&mut out));
    set_gemm_mode(GemmMode::Blocked);
    let t_blk = time_per_call(reps, || run(&mut out));
    (flops / t_ref / 1e9, flops / t_blk / 1e9)
}

/// Builds the LazyDP step workload used for the before/after step
/// timing (same construction as the `scaling` experiment: a uniform
/// trace matching the model's table geometry).
fn step_workload(cfg: &DlrmConfig, batch: usize, steps: usize) -> (Dlrm, Vec<MiniBatch>) {
    let mut rng = Xoshiro256PlusPlus::seed_from(29);
    let model = Dlrm::new(cfg.clone(), &mut rng);
    let scfg = SyntheticConfig {
        num_dense: cfg.num_dense,
        table_rows: cfg.table_rows.clone(),
        pooling: cfg.pooling,
        num_samples: batch * (steps + 2),
        distributions: cfg
            .table_rows
            .iter()
            .map(|&r| AccessDistribution::uniform(r))
            .collect(),
        seed: 0xfeed,
    };
    let ds = SyntheticDataset::new(scfg);
    let batches = (0..steps + 2)
        .map(|i| ds.batch_of(&(i * batch..(i + 1) * batch).collect::<Vec<_>>()))
        .collect();
    (model, batches)
}

/// Mean seconds per steady-state LazyDP step under the current GEMM
/// mode (2 arena warm-up steps, then `timed` timed steps, 1 thread).
fn step_seconds(model0: &Dlrm, batches: &[MiniBatch], batch: usize, timed: usize) -> f64 {
    let dp = DpConfig::new(0.8, 1.0, 0.05, batch).with_threads(1);
    let cfg = LazyDpConfig::new(dp, true);
    let mut model = model0.clone();
    let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(5));
    opt.step(&mut model, &batches[0], Some(&batches[1]));
    opt.step(&mut model, &batches[1], Some(&batches[2]));
    let t0 = Instant::now();
    for i in 0..timed {
        let cur = &batches[2 + (i % (batches.len() - 3))];
        let next = &batches[3 + (i % (batches.len() - 3))];
        opt.step(&mut model, cur, Some(next));
    }
    t0.elapsed().as_secs_f64() / timed as f64
}

/// The `kernels` experiment (registry id `kernels`).
#[must_use]
pub fn kernel_throughput() -> Table {
    let mut t = Table::new(
        "kernels",
        "Kernel layer — blocked GEMM micro-kernels, single-pass noise fills, \
         zero-allocation step (before/after, this machine, 1 thread)",
        &["kernel", "shape", "before", "after", "speedup", "unit"],
    )
    .with_note(
        "\"before\" = naive reference kernels / two-pass fill; \"after\" = register-blocked \
         micro-kernels (packed B panels, MR×NR mul_add block) / single-pass fill with batched \
         uniforms. Both GEMM modes are bitwise identical, so the speedup is pure wall-clock. \
         Gaussian fill is compute-bound in the Box–Muller transform (the paper's Fig. 6 point: \
         81% of AVX peak), so removing the second sweep is within noise on a warm cache — the \
         single-pass form wins structurally (one pass, batched draws), not arithmetically. \
         Step rows are steady-state (scratch arena warm ⇒ zero allocations per step), MLPerf \
         MLP widths. Single-threaded; this container exposes 1 CPU — multi-core hosts \
         additionally scale through the executor. Acceptance target: ≥ 2× blocked-vs-reference \
         matmul on the medium shape in release.",
    );

    // GEMM sweep runs single-threaded (the acceptance metric) and
    // restores the executor width afterwards.
    let prev_threads = lazydp_exec::global_threads();
    lazydp_exec::set_global_threads(1);
    let (shapes, gemm_reps, fill_len, fill_reps, step_cfg, step_batch, step_timed) =
        if cfg!(debug_assertions) {
            // Debug builds only smoke the machinery (the test registry
            // renders every experiment); numbers are not meaningful.
            (
                vec![("small", 16usize, 32usize, 16usize), ("medium", 24, 48, 24)],
                2usize,
                1usize << 10,
                4usize,
                DlrmConfig::tiny(2, 64, 8),
                4usize,
                2usize,
            )
        } else {
            (
                // DLRM MLP shapes: small ≈ bottom-MLP layer at batch 64,
                // medium ≈ a 512-wide top-MLP layer at batch 256.
                vec![
                    ("small", 64usize, 128usize, 64usize),
                    ("medium", 256, 512, 512),
                ],
                30usize,
                1usize << 20,
                60usize,
                // MLPerf MLP widths (the GEMM-heavy per-step cost at this
                // scale), tables scaled far down — as in `scaling`.
                DlrmConfig::mlperf(1_000_000),
                64usize,
                4usize,
            )
        };

    for (label, m, k, n) in shapes {
        let a = bench_matrix(m, k, 1);
        let b = bench_matrix(k, n, 2);
        let at = bench_matrix(k, m, 3);
        let bt = bench_matrix(n, k, 4);
        let flops = (2 * m * k * n) as f64;
        let shape = format!("{m}x{k}x{n}");
        let (r, bl) = gemm_point(flops, gemm_reps, |out| a.matmul_into(&b, out));
        t.push_row(vec![
            "matmul".into(),
            format!("{label} {shape}"),
            format!("{r:.2}"),
            format!("{bl:.2}"),
            format!("{:.2}x", bl / r),
            "GFLOP/s".into(),
        ]);
        let (r, bl) = gemm_point(flops, gemm_reps, |out| at.t_matmul_into(&b, out));
        t.push_row(vec![
            "t_matmul".into(),
            format!("{label} {shape}"),
            format!("{r:.2}"),
            format!("{bl:.2}"),
            format!("{:.2}x", bl / r),
            "GFLOP/s".into(),
        ]);
        let (r, bl) = gemm_point(flops, gemm_reps, |out| a.matmul_t_into(&bt, out));
        t.push_row(vec![
            "matmul_t".into(),
            format!("{label} {shape}"),
            format!("{r:.2}"),
            format!("{bl:.2}"),
            format!("{:.2}x", bl / r),
            "GFLOP/s".into(),
        ]);
    }

    // DP backward: two-pass ghost-norms + reweighted backward versus
    // the fused clipped backward (bitwise-identical outputs; the fused
    // pass runs 2 GEMMs per layer instead of 3 by reusing the ghost
    // chain's activation gradients).
    let (dp_shapes, dp_reps) = if cfg!(debug_assertions) {
        (
            vec![
                ("small", 8usize, 16usize, vec![16usize, 1]),
                ("medium", 12, 24, vec![24, 1]),
            ],
            2usize,
        )
    } else {
        (
            // Same DLRM MLP scales as the GEMM sweep: small ≈ the
            // bottom MLP at batch 64, medium ≈ the top MLP at batch 256.
            vec![
                ("small", 64, 128, vec![128, 64, 1]),
                ("medium", 256, 512, vec![512, 256, 1]),
            ],
            15usize,
        )
    };
    for (label, batch, in_dim, widths) in dp_shapes {
        let mut rng = Xoshiro256PlusPlus::seed_from(31);
        let mlp = Mlp::new(in_dim, &widths, &mut rng);
        let x = bench_matrix(batch, in_dim, 9);
        let cache = mlp.forward(&x);
        let g = bench_matrix(batch, *widths.last().expect("non-empty widths"), 10);
        let clip = |n: &[f64], w: &mut Vec<f32>| {
            w.clear();
            w.extend(n.iter().map(|&v| {
                let l2 = v.sqrt();
                if l2 <= 1.0 {
                    1.0
                } else {
                    (1.0 / l2) as f32
                }
            }));
        };
        let mut grads = MlpGrads::default();
        let mut grad_in = Matrix::zeros(0, 0);
        let mut arena = lazydp_tensor::ScratchArena::new();
        let mut nbuf = Vec::new();
        let mut wbuf = Vec::new();
        let t_two = time_per_call(dp_reps, || {
            mlp.backward_ghost_norms_into(&cache, &g, &mut nbuf, &mut grad_in, &mut arena);
            clip(&nbuf, &mut wbuf);
            mlp.backward_weighted_into(&cache, &g, &wbuf, &mut grads, &mut grad_in, &mut arena);
        });
        let mut dz = Vec::new();
        let t_fused = time_per_call(dp_reps, || {
            mlp.backward_clipped_into(
                &cache,
                &g,
                clip,
                &mut grads,
                &mut grad_in,
                &mut dz,
                &mut arena,
            );
        });
        let widths_str = widths
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("-");
        t.push_row(vec![
            "dp_backward".into(),
            format!("{label} batch {batch}, MLP {in_dim}-{widths_str}"),
            format!("{:.3}", t_two * 1e3),
            format!("{:.3}", t_fused * 1e3),
            format!("{:.2}x", t_two / t_fused),
            "ms/pass".into(),
        ]);
    }

    // Gaussian fill: two-pass reference vs the single-pass kernel.
    let sampler = GaussianSampler::new(0.5, 0.3);
    let mut buf = vec![0.0f32; fill_len];
    let mut rng = Xoshiro256PlusPlus::seed_from(7);
    let t_two = time_per_call(fill_reps, || {
        fill_standard_normal(&mut rng, &mut buf);
        for x in &mut buf {
            *x = 0.5 + 0.3 * *x;
        }
    });
    let t_one = time_per_call(fill_reps, || {
        sampler.fill(&mut rng, &mut buf);
    });
    let to_ms = |s: f64| fill_len as f64 / s / 1e6;
    t.push_row(vec![
        "gaussian_fill".into(),
        format!("{fill_len} samples, N(0.5, 0.3²)"),
        format!("{:.1}", to_ms(t_two)),
        format!("{:.1}", to_ms(t_one)),
        format!("{:.2}x", t_two / t_one),
        "Msamples/s".into(),
    ]);

    // Steady-state LazyDP step, reference vs blocked kernels.
    let (model0, batches) = step_workload(&step_cfg, step_batch, step_timed.max(2) * 2);
    set_gemm_mode(GemmMode::Reference);
    let s_ref = step_seconds(&model0, &batches, step_batch, step_timed);
    set_gemm_mode(GemmMode::Blocked);
    let s_blk = step_seconds(&model0, &batches, step_batch, step_timed);
    t.push_row(vec![
        "lazydp_step".into(),
        format!("{} tables, batch {step_batch}", step_cfg.table_rows.len()),
        format!("{:.2}", s_ref * 1e3),
        format!("{:.2}", s_blk * 1e3),
        format!("{:.2}x", s_ref / s_blk),
        "ms/step".into(),
    ]);
    t.push_row(vec![
        "lazydp_step".into(),
        "per training sample".into(),
        format!("{:.0}", s_ref / step_batch as f64 * 1e9),
        format!("{:.0}", s_blk / step_batch as f64 * 1e9),
        format!("{:.2}x", s_ref / s_blk),
        "ns/sample".into(),
    ]);

    lazydp_exec::set_global_threads(prev_threads);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_experiment_renders_with_sane_numbers() {
        let t = kernel_throughput();
        assert!(
            t.rows.len() >= 10,
            "expected GEMM + DP-backward + fill + step rows"
        );
        for row in &t.rows {
            let before: f64 = row[2].parse().expect("numeric before");
            let after: f64 = row[3].parse().expect("numeric after");
            assert!(before > 0.0 && after > 0.0, "{row:?}");
            assert!(row[4].ends_with('x'), "{row:?}");
        }
        // Every GEMM variant and the DP backward appear at both shapes.
        for kernel in ["matmul", "t_matmul", "matmul_t", "dp_backward"] {
            assert_eq!(t.rows.iter().filter(|r| r[0] == kernel).count(), 2);
        }
    }
}
