//! DP-AdaFEST vs eager DP-SGD(F) vs LazyDP — functional noise-traffic
//! comparison across growing table sizes.
//!
//! The claim under test (Ghazi et al., "Sparsity-Preserving
//! Differentially Private Training", adapted here as the fourth
//! algorithm): with private partition selection, the per-step noise
//! traffic is `O(touched partitions)`, not `O(table rows)`. Eager
//! DP-SGD perturbs every row every step; LazyDP defers but must still
//! settle every row by the finalize flush; DP-AdaFEST *drops* the
//! unselected partitions and pays a slightly larger ε for the
//! selection release (the `SelectThenNoise` mechanism). On a skewed
//! trace the touched-partition count saturates while the table keeps
//! growing — so AdaFEST's flush bytes flatten where the other two
//! scale linearly.

use crate::table::Table;
use lazydp_core::{LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{AccessDistribution, MiniBatch, SkewLevel, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{
    AdaFestConfig, AdaFestOptimizer, ClipStyle, DpConfig, EagerDpSgd, KernelCounters, Optimizer,
};
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_privacy::{Mechanism, RdpAccountant};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;
use std::time::Instant;

const TABLES: usize = 2;
const DIM: usize = 16;
const BATCH: usize = 128;
const STEPS: usize = 8;
// Selection operating point: `ShardSpec` partitions rows by
// `row mod S`, so a Zipf-hot trace still spreads its unique rows
// across shards and a touched partition's count is often just 1.
// σ_select is relative to the count query's sensitivity (Δ = √2 for
// 2 one-hot tables), so the realized per-count noise std is
// σ_select·Δ ≈ 0.25: the threshold sits midway between 0 and 1 and
// touched partitions pass w.p. ≈ 97.5% while untouched ones pass
// w.p. ≈ 2.5% — a sharper (lower-ε) selection would need coarser
// partitions or multiplicity counts.
const SIGMA_SELECT: f64 = 0.18;
const SELECT_THRESHOLD: f64 = 0.5;
const PARTITION_ROWS: usize = 16;
const DELTA: f64 = 1e-6;

/// The table-size sweep: small enough to run in the `figures` smoke
/// path, large enough that the eager-vs-sparse scaling gap is ≥ 16×.
const SIZES: [u64; 3] = [256, 1024, 4096];

fn setup(rows: u64) -> (Dlrm, Vec<MiniBatch>) {
    let mut rng = Xoshiro256PlusPlus::seed_from(88);
    let model = Dlrm::new(DlrmConfig::tiny(TABLES, rows, DIM), &mut rng);
    let dists = (0..TABLES)
        .map(|_| AccessDistribution::for_skew(rows, SkewLevel::High))
        .collect();
    let cfg = SyntheticConfig::small(TABLES, rows, BATCH * (STEPS + 1)).with_distributions(dists);
    let ds = SyntheticDataset::new(cfg);
    let batches = (0..=STEPS)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    (model, batches)
}

fn dp() -> DpConfig {
    DpConfig::paper_default(BATCH)
}

/// Runs `STEPS` iterations of one algorithm (plus its finalize flush,
/// so LazyDP's deferred rows are settled and counted) and returns the
/// kernel counters and wall time.
fn run_algo(which: &str, rows: u64) -> (KernelCounters, f64) {
    let (mut model, batches) = setup(rows);
    let t0 = Instant::now();
    let counters = match which {
        "eager" => {
            let mut opt = EagerDpSgd::new(dp(), ClipStyle::Fast, CounterNoise::new(9));
            for b in batches.iter().take(STEPS) {
                opt.step(&mut model, b, None);
            }
            opt.counters()
        }
        "lazydp" => {
            let cfg = LazyDpConfig::new(dp(), true);
            let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(9));
            for i in 0..STEPS {
                opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
            }
            opt.finalize_model(&mut model);
            opt.counters()
        }
        "adafest" => {
            let cfg = AdaFestConfig::new(dp(), SIGMA_SELECT, SELECT_THRESHOLD, PARTITION_ROWS);
            let mut opt = AdaFestOptimizer::new(cfg, CounterNoise::new(9));
            for b in batches.iter().take(STEPS) {
                opt.step(&mut model, b, None);
            }
            // `AdaFestOptimizer` implements `Optimizer<T>` for every
            // storage backend, so pin the default one for `counters`.
            <AdaFestOptimizer<CounterNoise> as Optimizer>::counters(&opt)
        }
        _ => unreachable!("unknown algorithm {which}"),
    };
    (counters, t0.elapsed().as_secs_f64())
}

fn epsilon_for(mech: &Mechanism) -> f64 {
    let q = BATCH as f64 / (BATCH * (STEPS + 1)) as f64;
    let mut acc = RdpAccountant::new();
    acc.compose_mechanism(mech, q, STEPS as u64);
    acc.epsilon(DELTA).0
}

/// The `adafest` experiment: noise traffic and ε per algorithm across
/// growing tables.
#[must_use]
pub fn adafest_traffic() -> Table {
    let mut t = Table::new(
        "adafest",
        "DP-AdaFEST — noise traffic vs table size (functional, Zipf-High trace, incl. finalize)",
        &[
            "rows/table",
            "algorithm",
            "Gaussian draws",
            "rows written",
            "noise bytes",
            &format!("ε ({STEPS} steps, δ=1e-6)"),
            "wall time",
        ],
    )
    .with_note(
        "Eager DP-SGD(F) and LazyDP must perturb every table row (eagerly every step / \
         lazily by the finalize flush), so their noise traffic grows with table rows. \
         DP-AdaFEST privately selects the partitions the batch actually touched and \
         drops the rest, so its traffic tracks the (skew-capped) touched-partition \
         count and flattens as the table grows. The cost is ε: the selection release \
         composes with the gradient release (SelectThenNoise mechanism), and the sharp \
         σ_select this mod-S partitioning needs makes the gap large here — coarser \
         partitions or multiplicity counts would buy the same sparsity much cheaper.",
    );
    let sigma = dp().noise_multiplier;
    let mechs: [(&str, Mechanism); 3] = [
        ("eager DP-SGD(F)", Mechanism::Gaussian { sigma }),
        ("LazyDP", Mechanism::Gaussian { sigma }),
        (
            "DP-AdaFEST",
            Mechanism::SelectThenNoise {
                sigma,
                sigma_select: SIGMA_SELECT,
            },
        ),
    ];
    let fmt_t = |s: f64| format!("{:.1} ms", s * 1e3);
    for rows in SIZES {
        for (label, mech) in &mechs {
            let which = match *label {
                "eager DP-SGD(F)" => "eager",
                "LazyDP" => "lazydp",
                _ => "adafest",
            };
            let (c, secs) = run_algo(which, rows);
            t.push_row(vec![
                rows.to_string(),
                (*label).into(),
                c.gaussian_samples.to_string(),
                c.table_rows_written.to_string(),
                c.table_bytes_written(DIM).to_string(),
                format!("{:.2}", epsilon_for(mech)),
                fmt_t(secs),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline acceptance claim: eager and LazyDP flush traffic
    /// grows with table rows; AdaFEST's tracks touched partitions and
    /// flattens on the skewed trace.
    #[test]
    fn adafest_flush_traffic_scales_with_touched_partitions_not_rows() {
        let small = SIZES[0];
        let large = SIZES[2];
        let grow = large as f64 / small as f64; // 16×

        let written = |which: &str, rows: u64| run_algo(which, rows).0.table_rows_written as f64;

        let eager_ratio = written("eager", large) / written("eager", small);
        let lazy_ratio = written("lazydp", large) / written("lazydp", small);
        let ada_ratio = written("adafest", large) / written("adafest", small);

        assert!(
            eager_ratio > 0.9 * grow,
            "eager rows written must grow with table rows: {eager_ratio:.1}× vs {grow}×"
        );
        assert!(
            lazy_ratio > 0.5 * grow,
            "LazyDP (incl. finalize flush) must grow with table rows: {lazy_ratio:.1}×"
        );
        // The touched-partition count itself creeps up with the table
        // (the Zipf hot set is a fixed *fraction* of rows), so the pin
        // is relative: AdaFEST must scale far slower than the dense
        // algorithms, not stay perfectly flat.
        assert!(
            ada_ratio < 0.4 * eager_ratio,
            "AdaFEST rows written must track touched partitions, not rows: \
             {ada_ratio:.1}× vs eager {eager_ratio:.1}×"
        );
        // Absolute gap at the largest table: sparse ≪ dense.
        let gap = written("eager", large) / written("adafest", large);
        assert!(gap > 4.0, "AdaFEST must write far fewer rows: {gap:.1}×");
    }

    /// The ε ordering the mechanism accounting implies: the selection
    /// release costs privacy, so AdaFEST's ε strictly exceeds the pure
    /// Gaussian ε at the same σ — and both are finite.
    #[test]
    fn adafest_epsilon_exceeds_gaussian_at_same_sigma() {
        let sigma = dp().noise_multiplier;
        let eps_gauss = epsilon_for(&Mechanism::Gaussian { sigma });
        let eps_ada = epsilon_for(&Mechanism::SelectThenNoise {
            sigma,
            sigma_select: SIGMA_SELECT,
        });
        assert!(eps_gauss.is_finite() && eps_ada.is_finite());
        assert!(
            eps_ada > eps_gauss,
            "selection must cost ε: {eps_ada} vs {eps_gauss}"
        );
    }

    #[test]
    fn adafest_table_renders_all_algorithms_per_size() {
        let t = adafest_traffic();
        assert_eq!(t.rows.len(), SIZES.len() * 3);
        for rows in SIZES {
            let label = rows.to_string();
            assert_eq!(t.rows.iter().filter(|r| r[0] == label).count(), 3);
        }
        assert!(t.markdown().contains("DP-AdaFEST"));
    }
}
