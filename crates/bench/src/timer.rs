//! Wall-clock measurement, quarantined.
//!
//! The workspace lint pass (rule **D2**) bans `std::time::Instant` and
//! `SystemTime` everywhere outside `crates/bench`: wall-clock reads are
//! inherently non-deterministic, so a timing call sitting next to
//! training logic is a standing invitation to let "how long did it
//! take" leak into "what did it compute". Examples and demos that want
//! to report timings use this [`Stopwatch`] instead — the clock read
//! stays inside the bench crate, and the call site advertises that it
//! is measurement, not computation.

use std::time::{Duration, Instant};

/// A started wall clock. Measurement only — a `Stopwatch` reading must
/// never feed back into training state (DESIGN.md invariant #1).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as a float, convenient for rate arithmetic.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
