//! Wall-clock measurement, quarantined.
//!
//! The clock itself now lives in `lazydp_obs::clock` — the single
//! sanctioned home of `std::time::Instant` alongside this crate (lint
//! rule **D2**) — so the span machinery and the bench harness share
//! one timing implementation. This module re-exports [`Stopwatch`] for
//! the existing bench call sites; either path advertises the same
//! thing: measurement, never computation. A `Stopwatch` reading must
//! not feed back into training state (DESIGN.md invariant #1).

pub use lazydp_obs::clock::Stopwatch;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
