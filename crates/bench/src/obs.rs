//! Observability rollup: one short private training run, reported
//! entirely through the `lazydp_obs` metrics registry.
//!
//! The experiment brackets a LazyDP run (async prefetch input pipeline)
//! and a DP-AdaFEST run with two registry snapshots and tabulates the
//! delta — exercising every instrumented subsystem in one place:
//! trainer step counters, noise-plan rows and pending-depth histogram,
//! AdaFEST partition selection, input-queue depth/stalls, executor
//! chunk fan-out, and the spent-ε gauge. It also round-trips the
//! snapshot through `MetricsSnapshot::to_json`/`from_json`, so the
//! schema-versioned exporter is checked on every run (and on the CI
//! `LAZYDP_OBS=trace` leg, which uploads this table as BENCH_obs.json).
//!
//! Under `LAZYDP_OBS=off` every delta is legitimately zero; the table
//! says so rather than failing.
//!
//! Run with: `cargo run --release -p lazydp_bench --bin figures -- obs`
//! (or `json obs > BENCH_obs.json`).

use crate::table::Table;
use lazydp_core::{LazyDpConfig, PrivateTrainer};
use lazydp_data::{FixedBatchLoader, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{AdaFestConfig, DpConfig};
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_obs::MetricsSnapshot;
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;

/// Steps trained per optimizer in the rollup run.
const STEPS: usize = 6;
const BATCH: usize = 16;

fn setup(tables: usize, rows: u64) -> (Dlrm, SyntheticDataset) {
    let mut rng = Xoshiro256PlusPlus::seed_from(41);
    let model = Dlrm::new(DlrmConfig::tiny(tables, rows, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(tables, rows, BATCH * (STEPS + 2)));
    (model, ds)
}

/// Runs both optimizers and returns the registry delta across them.
/// Concurrent registry writers (parallel tests) can only inflate the
/// delta, never shrink it, so consumers treat the values as lower
/// bounds on "at least this run's work".
fn instrumented_runs() -> MetricsSnapshot {
    let before = lazydp_obs::snapshot::capture_metrics();

    // LazyDP through the async prefetch pipeline (drives the data.*
    // queue metrics as well as the trainer/exec groups).
    let (model, ds) = setup(2, 96);
    let q = BATCH as f64 / ds.len() as f64;
    let cfg = LazyDpConfig::new(DpConfig::paper_default(BATCH), true).with_threads(2);
    let mut trainer = PrivateTrainer::make_private_prefetch(
        model,
        cfg,
        FixedBatchLoader::new(ds, BATCH),
        CounterNoise::new(23),
        q,
    );
    let _ = trainer.train_steps(STEPS);
    let _ = trainer.epsilon(1e-6);
    let _ = trainer.finish();

    // DP-AdaFEST (drives the adafest.* partition-selection counters).
    let (model, ds) = setup(2, 96);
    let q = BATCH as f64 / ds.len() as f64;
    let cfg = AdaFestConfig::new(DpConfig::paper_default(BATCH), 1.0, 2.0, 16);
    let mut trainer = PrivateTrainer::make_private_adafest(
        model,
        cfg,
        FixedBatchLoader::new(ds, BATCH),
        CounterNoise::new(23),
        q,
    );
    let _ = trainer.train_steps(STEPS);
    let _ = trainer.finish();

    lazydp_obs::snapshot::capture_metrics().delta_since(&before)
}

/// The registered `obs` experiment.
///
/// # Panics
///
/// Panics if the snapshot does not survive a JSON round-trip — the
/// exporter schema is part of this experiment's contract.
#[must_use]
pub fn obs_rollup() -> Table {
    let delta = instrumented_runs();

    // The schema-versioned exporter must round-trip losslessly.
    let json = delta.to_json();
    let back = MetricsSnapshot::from_json(&json).expect("snapshot JSON must parse back");
    assert_eq!(
        back.to_json(),
        json,
        "snapshot JSON round-trip must be lossless"
    );

    let mut t = Table::new(
        "obs",
        "Observability rollup — lazydp_obs registry delta across one LazyDP (prefetch) + one DP-AdaFEST run",
        &["metric", "value"],
    )
    .with_note(&format!(
        "Two {STEPS}-step private training runs bracketed by registry snapshots \
         (schema v{}). Counters are deltas; gauges are last-written values; \
         histogram rows report count/mean. All values are zero under \
         LAZYDP_OBS=off — the gate is the point, not a failure. \
         JSON export: cargo run --release -p lazydp_bench --bin figures -- \
         json obs > BENCH_obs.json.",
        lazydp_obs::snapshot::SCHEMA_VERSION,
    ));
    for (name, value) in &delta.counters {
        t.push_row(vec![name.clone(), value.to_string()]);
    }
    for (name, value) in &delta.gauges {
        t.push_row(vec![name.clone(), format!("{value:.4}")]);
    }
    for h in &delta.histograms {
        t.push_row(vec![format!("{} (count)", h.name), h.count().to_string()]);
        t.push_row(vec![
            format!("{} (mean)", h.name),
            format!("{:.3}", h.mean()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_reports_every_group_and_roundtrips() {
        let t = obs_rollup();
        for metric in [
            "trainer.steps",
            "trainer.noise_plan_rows",
            "adafest.partitions_selected",
            "data.batches_produced",
            "exec.par_regions",
            "privacy.compositions",
            "privacy.spent_epsilon",
            "trainer.pending_depth (mean)",
        ] {
            assert!(
                t.rows.iter().any(|r| r[0] == metric),
                "rollup table must list {metric}"
            );
        }
        if lazydp_obs::counters_enabled() {
            // Other tests may run concurrently and add to the global
            // registry, so these are lower bounds, never exact counts.
            let at_least = |metric: &str, floor: u64| {
                let row = t.rows.iter().find(|r| r[0] == metric).expect("row exists");
                let v: u64 = row[1].parse().expect("numeric");
                assert!(v >= floor, "{metric} = {v}, expected >= {floor}");
            };
            at_least("trainer.steps", STEPS as u64);
            at_least("privacy.compositions", 2 * STEPS as u64);
            at_least("adafest.partitions_selected", 1);
            at_least("exec.par_regions", 1);
        }
    }
}
