//! Roofline experiment: measured GFLOP/s of the MLP forward, backward,
//! and fused-clipped backward against this machine's attainable FMA
//! peak (registry id `roofline`).
//!
//! The Criterion camel-curve microbenchmark (`benches/roofline.rs`)
//! demonstrates the paper's Fig. 6 *shape* — memory-bound ramp to
//! compute-bound plateau. This experiment answers the kernel-layer
//! question that curve raises: how close do the actual training GEMMs
//! run to the plateau? The peak is measured, not quoted from a
//! datasheet: a register-resident bundle of independent FMA chains
//! (eight 8-lane accumulators, enough to cover FMA latency × ports)
//! is timed in the same harness, giving the best sustained
//! multiply-add rate plain `mul_add` loops can reach on this core —
//! the honest ceiling for kernels built from the same instruction.
//!
//! Run at full scale (release) with
//! `cargo run --release -p lazydp_bench --bin figures -- roofline`
//! (JSON: `figures -- json roofline` → `BENCH_roofline.json` in CI,
//! one artifact per matrix leg next to `BENCH_kernels.json`).

use crate::table::Table;
use lazydp_model::{Mlp, MlpGrads};
use lazydp_rng::Xoshiro256PlusPlus;
use lazydp_tensor::{Matrix, ScratchArena};
use std::time::Instant;

/// Timing rounds per measurement (best-of-N, as in the `kernels`
/// experiment — this container shares one CPU).
const ROUNDS: usize = 5;

/// Independent FMA chains per peak-measurement pass: 8 accumulators of
/// 8 lanes. Eight independent 8-wide chains are enough to cover the
/// FMA latency×throughput product of any current x86 core (e.g. 2
/// ports × 4–5 cycles), so the loop sustains the core's FMA issue rate
/// rather than its dependency latency.
const CHAINS: usize = 8;

/// Lanes per chain — one AVX2 `f32` vector.
const WIDTH: usize = 8;

fn best_of(rounds: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// One peak-measurement pass: `iters` steps of [`CHAINS`]·[`WIDTH`]
/// independent `mul_add`s. `inline(never)` keeps the accumulator block
/// in registers and the timing loop honest.
#[inline(never)]
fn fma_chains(acc: &mut [[f32; WIDTH]; CHAINS], iters: usize) {
    let a = 0.999_f32;
    let b = 1e-7_f32;
    for _ in 0..iters {
        for chain in acc.iter_mut() {
            for v in chain.iter_mut() {
                *v = v.mul_add(a, b);
            }
        }
    }
}

/// Measured attainable FMA GFLOP/s (2 FLOPs per `mul_add`).
fn measured_peak(iters: usize) -> f64 {
    let mut acc = [[1.0f32; WIDTH]; CHAINS];
    let secs = best_of(ROUNDS, || fma_chains(&mut acc, iters));
    std::hint::black_box(&acc);
    (iters * CHAINS * WIDTH * 2) as f64 / secs / 1e9
}

fn bench_matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i as u32)
            .wrapping_mul(2_654_435_761)
            .wrapping_add((j as u32).wrapping_mul(40_503))
            .wrapping_add(seed);
        ((x % 1000) as f32 - 500.0) / 250.0
    })
}

/// Nominal GEMM FLOPs of one forward pass (`2·B·in·out` per layer;
/// bias adds and activations are excluded, which only *understates*
/// the achieved fraction of peak).
fn forward_flops(batch: usize, dims: &[usize]) -> f64 {
    let mut total = 0.0;
    for w in dims.windows(2) {
        total += 2.0 * batch as f64 * w[0] as f64 * w[1] as f64;
    }
    total
}

/// The `roofline` experiment (registry id `roofline`).
#[must_use]
pub fn roofline() -> Table {
    let mut t = Table::new(
        "roofline",
        "Roofline — measured GFLOP/s of forward / backward / fused-clipped backward \
         vs attainable FMA peak (this machine, 1 thread)",
        &[
            "pass",
            "shape",
            "GFLOP/s",
            "peak GFLOP/s",
            "of peak",
            "unit",
        ],
    )
    .with_note(
        "Peak is measured on this core: 8 independent 8-lane mul_add chains, register-resident \
         — the sustained FMA rate of the instruction the kernels are built from, not a \
         datasheet number. FLOP counts are nominal GEMM flops (2mnk per product; activations, \
         bias adds, row norms and clip-factor math are excluded, so every fraction is an \
         underestimate). backward = plain batch backward (2 GEMMs/layer beyond forward); \
         fused_clipped = ghost norms + clip + clipped aggregate in one chain (2 GEMMs/layer, \
         vs 3 for the two-pass path it replaced — same bits, fewer flops, so its *useful* \
         throughput column counts only the fused pass's own GEMMs). Single-threaded; this \
         container exposes 1 CPU. The camel-curve companion lives in benches/roofline.rs.",
    );

    let prev_threads = lazydp_exec::global_threads();
    lazydp_exec::set_global_threads(1);
    let (shapes, peak_iters) = if cfg!(debug_assertions) {
        // Debug builds only smoke the machinery; numbers are noise.
        (
            vec![
                ("small", 8usize, 16usize, vec![16usize, 1]),
                ("medium", 12, 24, vec![24, 1]),
            ],
            1usize << 12,
        )
    } else {
        (
            // The kernels-experiment DLRM MLP scales: small ≈ bottom
            // MLP at batch 64, medium ≈ top MLP at batch 256.
            vec![
                ("small", 64, 128, vec![128, 64, 1]),
                ("medium", 256, 512, vec![512, 256, 1]),
            ],
            1usize << 24,
        )
    };
    let peak = measured_peak(peak_iters);

    for (label, batch, in_dim, widths) in shapes {
        let mut rng = Xoshiro256PlusPlus::seed_from(41);
        let mlp = Mlp::new(in_dim, &widths, &mut rng);
        let x = bench_matrix(batch, in_dim, 3);
        let cache = mlp.forward(&x);
        let g = bench_matrix(batch, *widths.last().expect("non-empty widths"), 4);
        let mut dims = vec![in_dim];
        dims.extend_from_slice(&widths);
        let fwd_flops = forward_flops(batch, &dims);
        let widths_str = dims
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("-");
        let shape = format!("{label} batch {batch}, MLP {widths_str}");

        let mut fwd_cache = mlp.forward(&x);
        let t_fwd = best_of(ROUNDS, || mlp.forward_into(&x, &mut fwd_cache));

        let mut grads = MlpGrads::default();
        let mut grad_in = Matrix::zeros(0, 0);
        let mut arena = ScratchArena::new();
        let t_bwd = best_of(ROUNDS, || {
            mlp.backward_into(&cache, &g, &mut grads, &mut grad_in, &mut arena);
        });

        let clip = |n: &[f64], w: &mut Vec<f32>| {
            w.clear();
            w.extend(n.iter().map(|&v| {
                let l2 = v.sqrt();
                if l2 <= 1.0 {
                    1.0
                } else {
                    (1.0 / l2) as f32
                }
            }));
        };
        let mut dz = Vec::new();
        let t_fused = best_of(ROUNDS, || {
            mlp.backward_clipped_into(
                &cache,
                &g,
                clip,
                &mut grads,
                &mut grad_in,
                &mut dz,
                &mut arena,
            );
        });

        for (pass, secs, flops) in [
            ("forward", t_fwd, fwd_flops),
            // dw + dx GEMMs: 2× the forward flops.
            ("backward", t_bwd, 2.0 * fwd_flops),
            // ghost dx chain + clipped dw epilogue: also 2× forward.
            ("fused_clipped", t_fused, 2.0 * fwd_flops),
        ] {
            let gf = flops / secs / 1e9;
            t.push_row(vec![
                pass.into(),
                shape.clone(),
                format!("{gf:.2}"),
                format!("{peak:.2}"),
                format!("{:.1}%", 100.0 * gf / peak),
                "GFLOP/s".into(),
            ]);
        }
    }

    lazydp_exec::set_global_threads(prev_threads);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_experiment_renders_with_sane_numbers() {
        let t = roofline();
        assert_eq!(t.rows.len(), 6, "3 passes x 2 shapes");
        for row in &t.rows {
            let gf: f64 = row[2].parse().expect("numeric GFLOP/s");
            let pk: f64 = row[3].parse().expect("numeric peak");
            assert!(gf > 0.0 && pk > 0.0, "{row:?}");
            assert!(row[4].ends_with('%'), "{row:?}");
        }
        for pass in ["forward", "backward", "fused_clipped"] {
            assert_eq!(t.rows.iter().filter(|r| r[0] == pass).count(), 2);
        }
    }
}
