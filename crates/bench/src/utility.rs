//! Privacy–utility trade-off (functional).
//!
//! The paper's §2.5 points to Denison et al.'s demonstration that
//! DP-SGD "can provide both privacy and good model accuracy for
//! RecSys"; LazyDP's role is to make that training *fast* without
//! moving a single point on the trade-off curve (the model is
//! mathematically equivalent). This experiment traces the curve on the
//! synthetic planted-ground-truth workload: noise multiplier σ vs ROC
//! AUC / log-loss, with the resulting ε from the RDP accountant.

use crate::table::Table;
use lazydp_core::{LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{DpConfig, Optimizer, SgdOptimizer};
use lazydp_model::{auc, log_loss, Dlrm, DlrmConfig};
use lazydp_privacy::RdpAccountant;
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;

const TABLES: usize = 3;
const ROWS: u64 = 80;
const DIM: usize = 8;
const BATCH: usize = 48;
const STEPS: usize = 60;
const EVAL: usize = 256;

fn evaluate(model: &Dlrm, ds: &SyntheticDataset) -> (f64, f64) {
    let eval = ds.batch_of(&(0..EVAL).collect::<Vec<_>>());
    let cache = model.forward(&eval);
    let probs: Vec<f32> = cache
        .logits()
        .iter()
        .map(|&z| lazydp_tensor::ops::sigmoid(z))
        .collect();
    (auc(&eval.labels, &probs), log_loss(&eval.labels, &probs))
}

/// Trains LazyDP at noise multiplier `sigma` and returns
/// `(auc, log_loss)` on the held-in evaluation set. `sigma = 0` is
/// allowed (clipping only, no noise).
fn train_at(sigma: f64) -> (f64, f64) {
    let mut rng = Xoshiro256PlusPlus::seed_from(202);
    let mut model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, EVAL));
    let dp = DpConfig::new(sigma, 4.0, 0.1, BATCH);
    let cfg = LazyDpConfig::new(dp, true);
    let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(77));
    let batches: Vec<_> = (0..=STEPS)
        .map(|i| {
            let ids: Vec<usize> = (0..BATCH).map(|k| (i * BATCH + k) % EVAL).collect();
            ds.batch_of(&ids)
        })
        .collect();
    for i in 0..STEPS {
        opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
    }
    opt.finalize_model(&mut model);
    evaluate(&model, &ds)
}

/// Runs the σ sweep and renders the trade-off table.
#[must_use]
pub fn utility_tradeoff() -> Table {
    let mut t = Table::new(
        "utility",
        "Privacy–utility trade-off — σ vs AUC / log-loss (functional LazyDP)",
        &["σ", "ε (60 steps, δ=1e-6)", "ROC AUC", "log-loss"],
    )
    .with_note(
        "LazyDP trains the *same* model DP-SGD would (equivalence tests), so this curve \
         is the DP-SGD trade-off, reached ~100× faster at paper scale. Untrained AUC is \
         0.5; the planted ground truth caps achievable AUC well below 1.0 (labels are \
         sampled, not deterministic).",
    );
    // Non-private reference.
    {
        let mut rng = Xoshiro256PlusPlus::seed_from(202);
        let mut model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, EVAL));
        let mut opt = SgdOptimizer::new(0.1);
        for i in 0..STEPS {
            let ids: Vec<usize> = (0..BATCH).map(|k| (i * BATCH + k) % EVAL).collect();
            opt.step(&mut model, &ds.batch_of(&ids), None);
        }
        let (a, l) = evaluate(&model, &ds);
        t.push_row(vec![
            "— (SGD)".into(),
            "∞".into(),
            format!("{a:.3}"),
            format!("{l:.4}"),
        ]);
    }
    let q = BATCH as f64 / EVAL as f64;
    for sigma in [0.1f64, 0.5, 2.0, 8.0] {
        let (a, l) = train_at(sigma);
        let mut acc = RdpAccountant::new();
        acc.compose(sigma, q, STEPS as u64);
        let (eps, _) = acc.epsilon(1e-6);
        t.push_row(vec![
            format!("{sigma}"),
            format!("{eps:.2}"),
            format!("{a:.3}"),
            format!("{l:.4}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_noise_beats_high_noise_and_training_beats_chance() {
        let (auc_low, loss_low) = train_at(0.1);
        let (auc_high, loss_high) = train_at(8.0);
        assert!(auc_low > 0.55, "low-noise AUC {auc_low} must beat chance");
        assert!(
            loss_low < loss_high,
            "σ=0.1 loss {loss_low} must beat σ=8 loss {loss_high}"
        );
        assert!(
            auc_low > auc_high - 0.02,
            "AUC should not improve with noise"
        );
    }

    #[test]
    fn tradeoff_table_has_monotone_epsilon() {
        let t = utility_tradeoff();
        // Rows after the SGD reference: ε strictly decreasing in σ.
        let eps: Vec<f64> = t.rows[1..]
            .iter()
            .map(|r| r[1].parse().expect("numeric"))
            .collect();
        for w in eps.windows(2) {
            assert!(w[1] < w[0], "ε must fall as σ grows: {eps:?}");
        }
    }
}
