//! The EANA information leak, demonstrated as an attack (§2.5/§7.4).
//!
//! The paper's privacy argument against EANA: "EANA never adds noise to
//! an embedding vector if it has never been accessed, which will
//! directly leak the fact that no user data contains the corresponding
//! feature". This module runs that attack as a game:
//!
//! 1. Pick a *canary* feature (an embedding row). Flip a fair coin; on
//!    heads, plant one training example containing the canary.
//! 2. Train with the algorithm under attack.
//! 3. The adversary — who knows the initialization (it is public: seed +
//!    architecture) — guesses "present" iff the canary row moved.
//!
//! Against EANA the adversary is essentially always right (the row moves
//! only if accessed). Against DP-SGD/LazyDP every row moves (noise), so
//! the adversary's accuracy collapses to coin-flipping. The experiment
//! table reports measured detection accuracy over many trials.

use crate::table::Table;
use lazydp_core::{LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::{ClipStyle, DpConfig, EagerDpSgd, EanaOptimizer, Optimizer};
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::{Prng, Xoshiro256PlusPlus};

const ROWS: u64 = 64;
const CANARY: u64 = 7;
const BATCH: usize = 8;
const STEPS: usize = 4;
const TRIALS: usize = 40;

/// Which algorithm the adversary attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// EANA (noise only on accessed rows).
    Eana,
    /// DP-SGD(F) (noise everywhere).
    DpSgdF,
    /// LazyDP with ANS (noise everywhere by release time).
    LazyDp,
}

impl Target {
    fn label(self) -> &'static str {
        match self {
            Self::Eana => "EANA",
            Self::DpSgdF => "DP-SGD(F)",
            Self::LazyDp => "LazyDP",
        }
    }
}

/// Builds a batch whose sample 0 optionally gathers the canary row;
/// all other lookups avoid it.
fn batch(
    ds: &SyntheticDataset,
    base: usize,
    with_canary: bool,
    rng: &mut Xoshiro256PlusPlus,
) -> MiniBatch {
    let mut b = ds.batch_of(&(base..base + BATCH).collect::<Vec<_>>());
    let samples: Vec<Vec<u64>> = (0..BATCH)
        .map(|i| {
            if i == 0 && with_canary {
                vec![CANARY]
            } else {
                // Any non-canary row.
                let mut r = rng.next_below(ROWS - 1);
                if r >= CANARY {
                    r += 1;
                }
                vec![r]
            }
        })
        .collect();
    b.sparse[0] = lazydp_embedding::bag::BagIndices::from_samples(&samples);
    b
}

/// Runs one trial: returns whether the canary row moved from its known
/// initialization.
fn canary_moved(target: Target, present: bool, trial: u64) -> bool {
    let mut rng = Xoshiro256PlusPlus::seed_from(9000 + trial);
    let mut model = Dlrm::new(DlrmConfig::tiny(1, ROWS, 4), &mut rng);
    let init_row = model.tables[0].row(CANARY as usize).to_vec();
    let ds = SyntheticDataset::new(SyntheticConfig::small(1, ROWS, BATCH * (STEPS + 1)));
    let dp = DpConfig::paper_default(BATCH);
    // The canary (if present) appears in exactly one batch (the first).
    let batches: Vec<MiniBatch> = (0..=STEPS)
        .map(|i| batch(&ds, i * BATCH, present && i == 0, &mut rng))
        .collect();
    match target {
        Target::Eana => {
            let mut opt = EanaOptimizer::new(dp, CounterNoise::new(trial));
            for b in batches.iter().take(STEPS) {
                opt.step(&mut model, b, None);
            }
        }
        Target::DpSgdF => {
            let mut opt = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(trial));
            for b in batches.iter().take(STEPS) {
                opt.step(&mut model, b, None);
            }
        }
        Target::LazyDp => {
            let mut opt = LazyDpOptimizer::new(
                LazyDpConfig::new(dp, true),
                &model,
                CounterNoise::new(trial),
            );
            for i in 0..STEPS {
                opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
            }
            // The adversary sees the *released* model.
            opt.finalize_model(&mut model);
        }
    }
    model.tables[0].row(CANARY as usize) != init_row.as_slice()
}

/// Measured detection accuracy of the "did the canary row move?"
/// adversary against one target.
#[must_use]
pub fn detection_accuracy(target: Target) -> f64 {
    let mut correct = 0usize;
    for trial in 0..TRIALS {
        let present = trial % 2 == 0; // balanced coin
        let guess = canary_moved(target, present, trial as u64);
        if guess == present {
            correct += 1;
        }
    }
    correct as f64 / TRIALS as f64
}

/// Runs the attack against all three targets and renders the table.
#[must_use]
pub fn leak_experiment() -> Table {
    let mut t = Table::new(
        "leak",
        "§2.5/§7.4 — canary-feature detection attack: EANA's leak, quantified",
        &["target", "adversary accuracy", "interpretation"],
    )
    .with_note(
        "The adversary observes the released model and guesses that the canary feature \
         occurred in training iff its embedding row differs from the (public) \
         initialization. EANA leaks it perfectly; DP-SGD and LazyDP noise every row, so \
         the signal vanishes (≈ 50% = coin flipping). This is the §2.5 argument for why \
         LazyDP's full-table (lazy) noise is not optional.",
    );
    for target in [Target::Eana, Target::DpSgdF, Target::LazyDp] {
        let acc = detection_accuracy(target);
        let interp = if acc > 0.9 {
            "feature presence fully leaked"
        } else if acc < 0.65 {
            "indistinguishable (DP holds)"
        } else {
            "partial leak"
        };
        t.push_row(vec![
            target.label().into(),
            format!("{:.0}%", acc * 100.0),
            interp.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eana_leaks_dp_does_not() {
        let eana = detection_accuracy(Target::Eana);
        assert!(
            eana > 0.95,
            "EANA adversary accuracy {eana} should be ≈ 1.0"
        );
        let dpf = detection_accuracy(Target::DpSgdF);
        assert!(
            (0.3..0.7).contains(&dpf),
            "DP-SGD adversary accuracy {dpf} should be ≈ 0.5"
        );
        let lazy = detection_accuracy(Target::LazyDp);
        assert!(
            (0.3..0.7).contains(&lazy),
            "LazyDP adversary accuracy {lazy} should be ≈ 0.5"
        );
    }

    #[test]
    fn leak_table_renders_three_targets() {
        let t = leak_experiment();
        assert_eq!(t.rows.len(), 3);
        assert!(t.rows[0][2].contains("leaked"));
    }
}
