//! Shard-scaling experiment: wall-clock of the LazyDP training step
//! across sparse-state shard counts.
//!
//! With `DpConfig::shards = S`, each embedding table's history
//! bookkeeping and pending-noise sampling are hash-partitioned into `S`
//! independent units of executor work that run concurrently with each
//! other *and* with the step's dense forward/backward (the lookahead
//! flush only needs the next batch's indices, never the gradients — see
//! `lazydp_core::optimizer`). Because every row's noise is addressed by
//! its global id, the trained model is bitwise identical at every row
//! of this table — only wall-clock moves. The sweep drives the trainer
//! through the async `PrefetchLoader`, so batch generation is off the
//! critical path as it would be in a deployment.
//!
//! Run at full scale (release) with:
//! `cargo run --release -p lazydp_bench --bin figures -- sharding`.

use crate::table::Table;
use lazydp_core::{LazyDpConfig, PrivateTrainer};
use lazydp_data::{AccessDistribution, SyntheticConfig, SyntheticDataset};
use lazydp_dpsgd::DpConfig;
use lazydp_model::{Dlrm, DlrmConfig};
use lazydp_rng::counter::CounterNoise;
use lazydp_rng::Xoshiro256PlusPlus;
use std::time::Instant;

/// Shard counts the sweep measures (the S ∈ {1, 2, 4, 8} of the issue's
/// acceptance criteria).
pub const SHARD_POINTS: [usize; 4] = [1, 2, 4, 8];

/// Builds the model and a Zipf-skewed dataset matching `cfg`'s
/// geometry. A skewed trace is the interesting case for sharding: the
/// modulo hash must spread the hot rows across shards.
fn setup(cfg: &DlrmConfig, batch: usize, steps: usize) -> (Dlrm, SyntheticDataset) {
    let mut rng = Xoshiro256PlusPlus::seed_from(23);
    let model = Dlrm::new(cfg.clone(), &mut rng);
    let scfg = SyntheticConfig {
        num_dense: cfg.num_dense,
        table_rows: cfg.table_rows.clone(),
        pooling: cfg.pooling,
        num_samples: batch * (steps + 2),
        distributions: cfg
            .table_rows
            .iter()
            .map(|&r| AccessDistribution::zipf(r, 0.9))
            .collect(),
        seed: 0xfeed,
    };
    (model, SyntheticDataset::new(scfg))
}

/// Mean seconds per LazyDP step at one shard count (1 warmup step +
/// `timed_steps` timed), through the async prefetch pipeline.
fn step_seconds(
    model0: &Dlrm,
    ds: &SyntheticDataset,
    batch: usize,
    shards: usize,
    threads: usize,
    timed_steps: usize,
) -> f64 {
    let dp = DpConfig::paper_default(batch)
        .with_threads(threads)
        .with_shards(shards);
    let cfg = LazyDpConfig::new(dp, true);
    let loader = lazydp_data::FixedBatchLoader::new(ds.clone(), batch);
    let mut trainer = PrivateTrainer::make_private_prefetch(
        model0.clone(),
        cfg,
        loader,
        CounterNoise::new(3),
        batch as f64 / ds.len() as f64,
    );
    let _ = trainer.train_steps(1); // warmup (fills the prefetch queue)
    let t0 = Instant::now();
    let _ = trainer.train_steps(timed_steps);
    t0.elapsed().as_secs_f64() / timed_steps as f64
}

/// The shard-scaling sweep on an explicit model configuration.
#[must_use]
pub fn shard_scaling_with(cfg: &DlrmConfig, batch: usize, timed_steps: usize) -> Table {
    let threads = 4usize;
    let mut t = Table::new(
        "sharding",
        "Shard scaling — LazyDP step wall-clock vs sparse-state shard count (Zipf trace, async prefetch)",
        &["shards", "step (ms)", "speedup vs 1 shard"],
    )
    .with_note(&format!(
        "Hash-partitioned sparse state: history bookkeeping + noise sampling run \
         shard-parallel and overlap the dense compute; the trained model is bitwise \
         identical at every row of this table. Executor width {threads}; host reports \
         {} available core(s) — speedup above 1.0 requires physical cores. Full-scale \
         release run: cargo run --release -p lazydp_bench --bin figures -- sharding \
         (batch {batch}, {timed_steps} timed steps).",
        lazydp_exec::available_threads(),
    ));
    let (model0, ds) = setup(cfg, batch, timed_steps);
    let base = step_seconds(&model0, &ds, batch, SHARD_POINTS[0], threads, timed_steps);
    t.push_row(vec![
        SHARD_POINTS[0].to_string(),
        format!("{:.2}", base * 1e3),
        "1.00".into(),
    ]);
    for &shards in &SHARD_POINTS[1..] {
        let secs = step_seconds(&model0, &ds, batch, shards, threads, timed_steps);
        t.push_row(vec![
            shards.to_string(),
            format!("{:.2}", secs * 1e3),
            format!("{:.2}", base / secs),
        ]);
    }
    t
}

/// The registered experiment. Release builds measure an MLPerf-shaped
/// model scaled down; debug builds (the test registry) use a tiny model
/// so the suite stays fast.
#[must_use]
pub fn shard_scaling() -> Table {
    if cfg!(debug_assertions) {
        shard_scaling_with(&DlrmConfig::tiny(4, 256, 16), 4, 1)
    } else {
        shard_scaling_with(&DlrmConfig::mlperf(1_000_000), 64, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_shard_points_with_sane_numbers() {
        let t = shard_scaling_with(&DlrmConfig::tiny(2, 64, 8), 8, 1);
        assert_eq!(t.rows.len(), SHARD_POINTS.len());
        for (row, shards) in t.rows.iter().zip(SHARD_POINTS.iter()) {
            assert_eq!(row[0], shards.to_string());
            let ms: f64 = row[1].parse().expect("numeric step time");
            assert!(ms >= 0.0);
            let speedup: f64 = row[2].parse().expect("numeric speedup");
            assert!(speedup > 0.0);
        }
    }
}
