//! Minimal result-table rendering (markdown + CSV), dependency-free.

/// A labeled result table produced by an experiment runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id (e.g. `"fig10"`).
    pub id: String,
    /// Human title, including the paper artifact it reproduces.
    pub title: String,
    /// One-paragraph interpretation note printed under the table.
    pub note: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            note: String::new(),
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets the interpretation note.
    #[must_use]
    pub fn with_note(mut self, note: &str) -> Self {
        self.note = note.to_owned();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Renders GitHub-flavored markdown.
    #[must_use]
    pub fn markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push_str("\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n{}\n", self.note));
        }
        out
    }

    /// Renders the table as a JSON object
    /// (`{"id", "title", "note", "headers", "rows"}`) — the structured
    /// output every experiment emits via `figures -- json <id>`, so
    /// downstream tooling can ingest sweep results (the storage
    /// experiment's hit-rate/spill numbers, the scaling sweeps, …)
    /// without parsing markdown. Dependency-free, minimal escaping.
    #[must_use]
    pub fn json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let arr = |cells: &[String]| -> String {
            let inner: Vec<String> = cells.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", inner.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"note\":\"{}\",\"headers\":{},\"rows\":[{}]}}",
            esc(&self.id),
            esc(&self.title),
            esc(&self.note),
            arr(&self.headers),
            rows.join(",")
        )
    }

    /// Renders CSV (headers + rows).
    #[must_use]
    pub fn csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds compactly (µs/ms/s).
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a ratio with sensible precision.
#[must_use]
pub fn fmt_ratio(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0}")
    } else if r >= 10.0 {
        format!("{r:.1}")
    } else {
        format!("{r:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_render() {
        let mut t = Table::new("t1", "demo", &["a", "b"]).with_note("note here");
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("note here"));
        let csv = t.csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn json_renders_and_escapes() {
        let mut t = Table::new("t4", "demo \"quoted\"", &["a", "b"]).with_note("line1\nline2");
        t.push_row(vec!["1".into(), "with\\slash".into()]);
        let j = t.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\":\"t4\""));
        assert!(j.contains("demo \\\"quoted\\\""));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("with\\\\slash"));
        assert!(j.contains("\"headers\":[\"a\",\"b\"]"));
        assert!(j.contains("\"rows\":[[\"1\",\"with\\\\slash\"]]"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t2", "demo", &["x"]);
        t.push_row(vec!["a,b".into()]);
        assert_eq!(t.csv(), "x\n\"a,b\"\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t3", "demo", &["x", "y"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0025), "2.50 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.5 µs");
        assert_eq!(fmt_ratio(259.2), "259");
        assert_eq!(fmt_ratio(16.7), "16.7");
        assert_eq!(fmt_ratio(2.2), "2.20");
    }
}
