//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p lazydp-bench --bin figures -- list
//! cargo run --release -p lazydp-bench --bin figures -- fig10
//! cargo run --release -p lazydp-bench --bin figures -- all
//! cargo run --release -p lazydp-bench --bin figures -- report > report.md
//! cargo run --release -p lazydp-bench --bin figures -- csv fig10
//! cargo run --release -p lazydp-bench --bin figures -- json storage
//! ```

use lazydp_bench::{experiment_ids, full_report, run_experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") => {
            eprintln!("usage: figures <list|all|report|csv <id>|json <id>|ID...>");
            eprintln!("experiments:");
            for (id, desc) in experiment_ids() {
                eprintln!("  {id:8} {desc}");
            }
        }
        Some("list") => {
            for (id, desc) in experiment_ids() {
                println!("{id:8} {desc}");
            }
        }
        Some("all") => {
            for (id, _) in experiment_ids() {
                let table = run_experiment(id).expect("registered id");
                println!("{}", table.markdown());
            }
        }
        Some("report") => {
            println!("{}", full_report());
        }
        Some("csv") => {
            let id = args.get(1).map(String::as_str).unwrap_or_default();
            match run_experiment(id) {
                Some(t) => println!("{}", t.csv()),
                None => {
                    eprintln!("unknown experiment: {id}");
                    std::process::exit(2);
                }
            }
        }
        Some("json") => {
            let id = args.get(1).map(String::as_str).unwrap_or_default();
            match run_experiment(id) {
                Some(t) => println!("{}", t.json()),
                None => {
                    eprintln!("unknown experiment: {id}");
                    std::process::exit(2);
                }
            }
        }
        _ => {
            let mut failed = false;
            for id in &args {
                match run_experiment(id) {
                    Some(t) => println!("{}", t.markdown()),
                    None => {
                        eprintln!("unknown experiment: {id} (try `figures list`)");
                        failed = true;
                    }
                }
            }
            if failed {
                std::process::exit(2);
            }
        }
    }
}
