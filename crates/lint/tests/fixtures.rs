//! Fixture-based self-tests: one positive (flagged) and one negative
//! (clean) snippet per rule, an allowlist round-trip, and the gate that
//! matters most — the linter must run clean on this very workspace.

use lazydp_lint::allowlist;
use lazydp_lint::rules::{check_source, Violation};
use std::path::Path;

/// Violations of `rule` in `source` when placed at `path`.
fn flags(path: &str, source: &str, rule: &str) -> Vec<Violation> {
    check_source(path, source)
        .into_iter()
        .filter(|v| v.rule == rule)
        .collect()
}

// ---------------------------------------------------------------- D1 --

#[test]
fn d1_flags_hashmap_in_library_code() {
    let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    let v = flags("crates/model/src/x.rs", src, "D1");
    assert_eq!(v.len(), 3, "{v:?}");
    assert_eq!((v[0].line, v[0].col), (1, 23));
}

#[test]
fn d1_ignores_btreemap_and_test_code() {
    let clean =
        "use std::collections::BTreeMap;\nfn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
    assert!(flags("crates/model/src/x.rs", clean, "D1").is_empty());
    let test_only = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
    assert!(flags("crates/model/src/x.rs", test_only, "D1").is_empty());
}

// ---------------------------------------------------------------- D2 --

#[test]
fn d2_flags_wall_clock_outside_bench() {
    let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
    let v = flags("crates/core/src/x.rs", src, "D2");
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].line, 1);
}

#[test]
fn d2_permits_wall_clock_in_bench_crate() {
    let src = "fn f() { let t = std::time::Instant::now(); let _ = t.elapsed(); }\n";
    assert!(flags("crates/bench/src/timing.rs", src, "D2").is_empty());
}

#[test]
fn d2_permits_wall_clock_in_obs_crate() {
    let src = "fn f() { let t = std::time::Instant::now(); let _ = t.elapsed(); }\n";
    assert!(flags("crates/obs/src/clock.rs", src, "D2").is_empty());
    // The sanctioned set is exactly bench + obs; everything else flags.
    assert_eq!(flags("crates/store/src/cache.rs", src, "D2").len(), 1);
}

// ---------------------------------------------------------------- D3 --

#[test]
fn d3_flags_raw_threads_outside_exec() {
    let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
    assert_eq!(flags("crates/model/src/x.rs", spawn, "D3").len(), 1);
    let builder = "fn f() { std::thread::Builder::new(); }\n";
    assert_eq!(flags("crates/model/src/x.rs", builder, "D3").len(), 1);
}

#[test]
fn d3_permits_threads_in_exec_crate() {
    let src = "fn f() { std::thread::scope(|_| {}); }\n";
    assert!(flags("crates/exec/src/lib.rs", src, "D3").is_empty());
}

// ---------------------------------------------------------------- D4 --

#[test]
fn d4_flags_float_reduction_outside_tensor() {
    let src = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n";
    let v = flags("crates/model/src/x.rs", src, "D4");
    assert_eq!(v.len(), 1, "{v:?}");
    let fold = "fn f(xs: &[f32]) -> f32 { xs.iter().copied().fold(0.0f32, f32::max) }\n";
    assert_eq!(flags("crates/model/src/x.rs", fold, "D4").len(), 1);
}

#[test]
fn d4_permits_integer_reductions_and_tensor_internals() {
    let ints = "fn f(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }\n";
    assert!(flags("crates/model/src/x.rs", ints, "D4").is_empty());
    let float = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n";
    assert!(flags("crates/tensor/src/vecops.rs", float, "D4").is_empty());
}

// ---------------------------------------------------------------- D5 --

#[test]
fn d5_flags_crate_root_without_forbid_unsafe() {
    let src = "//! A crate.\npub fn f() {}\n";
    let v = flags("crates/model/src/lib.rs", src, "D5");
    assert_eq!(v.len(), 1, "{v:?}");
}

#[test]
fn d5_satisfied_by_forbid_attr_and_skips_non_roots() {
    let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(flags("crates/model/src/lib.rs", good, "D5").is_empty());
    // Non-root modules carry no obligation.
    let module = "pub fn f() {}\n";
    assert!(flags("crates/model/src/x.rs", module, "D5").is_empty());
}

// ---------------------------------------------------------------- P1 --

#[test]
fn p1_flags_debug_printing_of_gradients() {
    let src = "fn f(grad: &SparseGrad) { println!(\"{:?}\", grad); }\n";
    let v = flags("crates/model/src/x.rs", src, "P1");
    assert_eq!(v.len(), 1, "{v:?}");
    let dbg = "fn f(per_example_norms: &[f32]) { dbg!(per_example_norms); }\n";
    assert_eq!(flags("crates/model/src/x.rs", dbg, "P1").len(), 1);
}

#[test]
fn p1_permits_benign_prints_and_test_prints() {
    let benign = "fn f(loss: f64) { println!(\"loss {loss}\"); }\n";
    assert!(flags("crates/model/src/x.rs", benign, "P1").is_empty());
    let test_only =
        "#[cfg(test)]\nmod tests {\n    fn f(grad: u32) { println!(\"{:?}\", grad); }\n}\n";
    assert!(flags("crates/model/src/x.rs", test_only, "P1").is_empty());
}

#[test]
fn p1_flags_gradient_derived_fault_ordinals() {
    // A fault-injection ordinal computed from a gradient-bearing value
    // makes the failure schedule data-dependent — flagged like a
    // gradient-printing format macro.
    let src = "fn f(grad_count: u64) { \
               lazydp_fault::point(lazydp_fault::Site::MidStep, grad_count); }\n";
    let v = flags("crates/core/src/x.rs", src, "P1");
    assert_eq!(v.len(), 1, "{v:?}");
    let decide = "fn f(norm_bucket: u64) -> bool { \
                  lazydp_fault::decide(lazydp_fault::Site::PageRead, norm_bucket).is_some() }\n";
    assert_eq!(flags("crates/store/src/x.rs", decide, "P1").len(), 1);
}

#[test]
fn p1_permits_counter_keyed_fault_sites_and_tests() {
    // Operation-count ordinals are the sanctioned shape.
    let benign = "fn f(iter: u64) { \
                  lazydp_fault::point(lazydp_fault::Site::MidStep, iter); }\n";
    assert!(flags("crates/core/src/x.rs", benign, "P1").is_empty());
    // `point(…)` not anchored by lazydp_fault (another crate's method)
    // is not this rule's business.
    let foreign = "fn f(grad: u64) { geometry.point(grad); }\n";
    assert!(flags("crates/model/src/x.rs", foreign, "P1").is_empty());
    let test_only = "#[cfg(test)]\nmod tests {\n    fn f(grad_ord: u64) { \
                     lazydp_fault::point(lazydp_fault::Site::MidFlush, grad_ord); }\n}\n";
    assert!(flags("crates/core/src/x.rs", test_only, "P1").is_empty());
}

// ---------------------------------------------------------------- P2 --

#[test]
fn p2_flags_foreign_rng_outside_rng_crate() {
    let src = "fn f() { let x = rand::random::<u64>(); let _ = x; }\n";
    assert_eq!(flags("crates/model/src/x.rs", src, "P2").len(), 1);
    let entropy = "fn f() { let r = StdRng::from_entropy(); let _ = r; }\n";
    assert!(!flags("crates/model/src/x.rs", entropy, "P2").is_empty());
}

#[test]
fn p2_permits_rng_crate_internals() {
    let src = "fn f() { let x = rand::random::<u64>(); let _ = x; }\n";
    assert!(flags("crates/rng/src/compat.rs", src, "P2").is_empty());
}

// ---------------------------------------------------------- P1 (obs) --

#[test]
fn p1_flags_gradient_values_at_metric_call_sites() {
    let src = "fn f(grad_rows: u64) { lazydp_obs::metrics().trainer.steps.add(grad_rows); }\n";
    let v = flags("crates/core/src/x.rs", src, "P1");
    assert_eq!(v.len(), 1, "{v:?}");
    let hist =
        "fn f(norms: &[u64]) { lazydp_obs::metrics().trainer.pending_depth.record(norms[0]); }\n";
    assert_eq!(flags("crates/core/src/x.rs", hist, "P1").len(), 1);
}

#[test]
fn p1_permits_benign_metric_call_sites() {
    let benign = "fn f(rows: u64) { lazydp_obs::metrics().trainer.noise_plan_rows.add(rows); }\n";
    assert!(flags("crates/core/src/x.rs", benign, "P1").is_empty());
    // `.add`/`.set` with no lazydp_obs anchor in the statement is not a
    // metric site (e.g. a wrapping-add or a setter) and must not flag.
    let unrelated = "fn f(grad: u64) -> u64 { acc.add(grad) }\n";
    assert!(flags("crates/core/src/x.rs", unrelated, "P1").is_empty());
}

#[test]
fn p1_flags_gradient_bearing_span_names() {
    let src = "fn f() { lazydp_obs::span!(\"step.grad_dump\"); }\n";
    assert_eq!(flags("crates/core/src/x.rs", src, "P1").len(), 1);
    let benign = "fn f() { lazydp_obs::span!(\"step.forward\"); }\n";
    assert!(flags("crates/core/src/x.rs", benign, "P1").is_empty());
}

// ---------------------------------------------------------------- O1 --

#[test]
fn o1_flags_obs_reads_in_hot_paths() {
    let snap = "fn f() -> u64 { lazydp_obs::snapshot::capture_metrics().counter(\"x\") }\n";
    let v = flags("crates/core/src/x.rs", snap, "O1");
    assert_eq!(v.len(), 1, "{v:?}");
    let trace = "fn f() { let _ = lazydp_obs::trace::take_trace_events(); }\n";
    assert_eq!(flags("crates/store/src/x.rs", trace, "O1").len(), 1);
    let view = "fn f(c: &CacheCounters) { let _ = c.obs_read(); }\n";
    assert_eq!(flags("crates/store/src/x.rs", view, "O1").len(), 1);
}

#[test]
fn o1_permits_reads_in_bench_obs_and_tests() {
    let snap = "fn f() -> u64 { lazydp_obs::snapshot::capture_metrics().counter(\"x\") }\n";
    assert!(flags("crates/bench/src/obs.rs", snap, "O1").is_empty());
    assert!(flags("crates/obs/src/export.rs", snap, "O1").is_empty());
    let test_only = "#[cfg(test)]\nmod tests {\n    fn f() { let _ = \
                     lazydp_obs::snapshot::capture_metrics(); }\n}\n";
    assert!(flags("crates/core/src/x.rs", test_only, "O1").is_empty());
    // Writing is always fine: the exporter entry points are not reads.
    let write = "fn f() { lazydp_obs::metrics().store.hits.incr(); }\n";
    assert!(flags("crates/core/src/x.rs", write, "O1").is_empty());
}

// --------------------------------------------------- allowlist loop --

#[test]
fn allowlist_round_trip_suppresses_exactly_the_matching_violation() {
    let src = "use std::collections::HashMap;\n";
    let v = &flags("crates/model/src/x.rs", src, "D1")[0];
    let toml = "\
[[allow]]
rule = \"D1\"
path = \"crates/model/src/x.rs\"
line = 1
reason = \"fixture: provably lookup-only map in a fixture\"
";
    let entries = allowlist::parse(toml).expect("valid allowlist");
    assert_eq!(entries.len(), 1);
    assert!(entries[0].matches(v));
    // Same rule, different file: no match.
    let other = &flags("crates/model/src/y.rs", src, "D1")[0];
    assert!(!entries[0].matches(other));
}

// ----------------------------------------------- the workspace gate --

#[test]
fn linter_runs_clean_on_this_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let report = lazydp_lint::run_check(&root, None).expect("lint run");
    assert!(report.files_scanned > 50, "walked {}", report.files_scanned);
    assert!(
        report.clean(),
        "workspace must lint clean:\n{}",
        report.to_text()
    );
    assert!(
        report.stale_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.stale_allows
    );
}
