//! The rule engine: eight lexical rules that machine-check the
//! determinism & privacy contract documented in `ARCHITECTURE.md`.
//!
//! Every rule reports [`Violation`]s with a `file:line` span and a rule
//! ID; exemptions live in `lint.toml` (see [`crate::allowlist`]) and
//! each must carry a written justification.
//!
//! | ID | Invariant protected |
//! |----|---------------------|
//! | D1 | Bitwise replay: no `HashMap`/`HashSet` in non-test code (unordered iteration) |
//! | D2 | Replayability: no `Instant`/`SystemTime` outside `crates/bench` and `crates/obs` |
//! | D3 | Deterministic parallelism: no `std::thread::{spawn,scope}` outside `lazydp_exec` |
//! | D4 | Fixed accumulation order: no float `.sum()`/`.fold(…)` outside `lazydp_tensor` |
//! | D5 | Memory safety: every crate root carries `#![forbid(unsafe_code)]` |
//! | P1 | DP hygiene: no printing or metric-recording of gradient-bearing values in non-test code |
//! | P2 | Owned noise: no `rand::`/entropy-seeded sampling outside `lazydp_rng` |
//! | O1 | Write-only observability: `lazydp_obs` read APIs only in `crates/obs`, `crates/bench`, tests |

use crate::lexer::{lex, Token, TokenKind};

/// A rule's identity and documentation, surfaced by `lazydp-lint rules`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule ID (`D1`…`D5`, `P1`, `P2`).
    pub id: &'static str,
    /// One-line description of what the rule flags.
    pub summary: &'static str,
    /// The contract invariant the rule protects.
    pub invariant: &'static str,
}

/// The rule table. IDs are stable and part of the `--json` schema.
pub const RULES: &[Rule] = &[
    Rule {
        id: "D1",
        summary: "no HashMap/HashSet in non-test code",
        invariant: "unordered iteration breaks bitwise replay; use BTreeMap, \
                    sorted Vec iteration, or allowlist lookup-only maps",
    },
    Rule {
        id: "D2",
        summary: "no Instant::now/SystemTime outside crates/bench and crates/obs",
        invariant: "wall-clock reads make runs unreplayable; the clock lives in \
                    lazydp_obs::clock (Stopwatch, span timing) and lazydp_bench",
    },
    Rule {
        id: "D3",
        summary: "no std::thread::{spawn,scope} outside lazydp_exec",
        invariant: "all parallelism goes through the deterministic executor \
                    (chunk-addressed par_for/par_map_chunks/overlap)",
    },
    Rule {
        id: "D4",
        summary: "no float .sum()/.fold(...) reductions outside lazydp_tensor",
        invariant: "determinism rule 3: float accumulation order is pinned by \
                    lazydp_tensor's primitives (vecops, dot_tree, gemm)",
    },
    Rule {
        id: "D5",
        summary: "every crate root carries #![forbid(unsafe_code)]",
        invariant: "the whole workspace is forbid-unsafe; keep it that way for \
                    every future crate",
    },
    Rule {
        id: "P1",
        summary: "no println!/eprintln!/dbg!/metric-record/span-name of \
                  gradient-bearing values in non-test code",
        invariant: "raw per-example gradients and norms must only leave the \
                    process through the clip->noise release path — never logs, \
                    never lazydp_obs metrics or span names, never \
                    lazydp_fault injection ordinals (a data-dependent failure \
                    schedule leaks through fault counters)",
    },
    Rule {
        id: "P2",
        summary: "no rand::-direct or entropy-seeded sampling outside lazydp_rng",
        invariant: "noise must come from the owned, replayable GaussianSampler \
                    / CounterRng streams",
    },
    Rule {
        id: "O1",
        summary: "no lazydp_obs read APIs (capture_metrics/take_trace_events/\
                  obs_read) outside crates/obs, crates/bench, and tests",
        invariant: "observability is write-only from hot paths: a recorded \
                    value may reach a report or an exporter, never a training \
                    decision — reads stay in bench, tests, and the obs \
                    exporters",
    },
];

/// Whether `id` names a known rule.
#[must_use]
pub fn rule_known(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One reported rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule ID.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The trimmed source line the violation sits on.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Token-index ranges (inclusive) that belong to `#[test]` functions or
/// `#[cfg(test)]` items. Rules other than D5 skip these.
fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (attr_end, is_test) = scan_attribute(toks, i + 1);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes (e.g. #[should_panic] after
        // #[test]) and find the item body.
        let mut j = attr_end + 1;
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            let (e, _) = scan_attribute(toks, j + 1);
            j = e + 1;
        }
        // The item runs to the first `;` at depth 0 or to the matching
        // `}` of its first depth-0 `{`.
        let mut depth = 0i32;
        let mut end = toks.len() - 1;
        while j < toks.len() {
            match toks[j].kind {
                TokenKind::Punct('{' | '(' | '[') => depth += 1,
                TokenKind::Punct('}' | ')' | ']') => {
                    depth -= 1;
                    if depth == 0 && toks[j].is_punct('}') {
                        end = j;
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((attr_start, end));
        i = end + 1;
    }
    regions
}

/// Scans an attribute starting at its `[` token index; returns the index
/// of the closing `]` and whether the attribute marks test code
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not
/// `#[cfg(not(test))]`).
fn scan_attribute(toks: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j, has_test && !has_not);
                }
            }
            TokenKind::Ident => {
                if toks[j].text == "test" {
                    has_test = true;
                } else if toks[j].text == "not" {
                    has_not = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    (toks.len() - 1, false)
}

/// Lints one file's source text. `rel_path` must be workspace-relative
/// with forward slashes (it drives the per-crate rule exemptions).
#[must_use]
pub fn check_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let toks = lex(source);
    let regions = test_regions(&toks);
    let lines: Vec<&str> = source.lines().collect();
    let in_test = |ti: usize| regions.iter().any(|&(a, b)| ti >= a && ti <= b);
    let snippet = |line: u32| -> String {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut out = Vec::new();
    let mut push = |rule: &'static str, t: &Token, message: String| {
        out.push(Violation {
            rule,
            path: rel_path.to_string(),
            line: t.line,
            col: t.col,
            snippet: snippet(t.line),
            message,
        });
    };

    let in_bench = rel_path.starts_with("crates/bench/");
    let in_exec = rel_path.starts_with("crates/exec/");
    let in_tensor = rel_path.starts_with("crates/tensor/");
    let in_rng = rel_path.starts_with("crates/rng/");
    let in_obs = rel_path.starts_with("crates/obs/");

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(i) {
            continue;
        }
        let name = t.text.as_str();

        // D1: unordered containers.
        if name == "HashMap" || name == "HashSet" {
            push(
                "D1",
                t,
                format!(
                    "`{name}` in non-test code: iteration order is \
                     nondeterministic and breaks bitwise replay; use \
                     BTreeMap/BTreeSet, a sorted Vec, or allowlist a \
                     provably lookup-only use"
                ),
            );
        }

        // D2: wall clock.
        if !(in_bench || in_obs) && (name == "Instant" || name == "SystemTime") {
            push(
                "D2",
                t,
                format!(
                    "wall-clock type `{name}` outside crates/bench and \
                     crates/obs: timing belongs in lazydp_obs::clock (e.g. \
                     `Stopwatch`, `span!`) or lazydp_bench, or allowlist a \
                     measurement-only span"
                ),
            );
        }

        // D3: raw threads. Matches `thread::spawn`, `thread::scope`,
        // and `thread::Builder` (whose `.spawn` method call would
        // otherwise slip past the path pattern).
        if !in_exec
            && (name == "spawn" || name == "scope" || name == "Builder")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
        {
            push(
                "D3",
                t,
                format!(
                    "`thread::{name}` outside lazydp_exec: all parallelism \
                     must go through the deterministic executor \
                     (par_for/par_map_chunks/overlap)"
                ),
            );
        }

        // D4: float reductions. Only calls count — `.sum(` or a
        // `.sum::<…>` turbofish — so a field named `sum` (e.g. a
        // histogram's running total) is not a reduction.
        let is_call = toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            || (i + 3 < toks.len()
                && toks[i + 1].is_punct(':')
                && toks[i + 2].is_punct(':')
                && toks[i + 3].is_punct('<'));
        if !in_tensor
            && (name == "sum" || name == "fold")
            && is_call
            && i >= 1
            && toks[i - 1].is_punct('.')
        {
            if let Some(ev) = float_reduction_evidence(&toks, i) {
                push(
                    "D4",
                    t,
                    format!(
                        "float `.{name}(…)` reduction outside lazydp_tensor \
                         ({ev}): route through lazydp_tensor's pinned \
                         accumulation primitives (vecops/dot_tree) so the \
                         accumulation order stays fixed, or allowlist with \
                         justification"
                    ),
                );
            }
        }

        // P1: gradient-bearing debug output.
        if let Some(mac) = FORMAT_MACROS.iter().find(|m| **m == name) {
            if i + 1 < toks.len() && toks[i + 1].is_punct('!') {
                if *mac == "dbg" {
                    push(
                        "P1",
                        t,
                        "`dbg!` in non-test code: debug output must never \
                         ship; remove it"
                            .to_string(),
                    );
                } else if let Some(arg) = sensitive_macro_arg(&toks, i + 2) {
                    push(
                        "P1",
                        t,
                        format!(
                            "`{name}!` formats gradient-bearing value \
                             `{arg}` in non-test code: raw per-example \
                             gradients/norms must not leak into logs; only \
                             released (post clip->noise) values may be \
                             printed — allowlist those with justification"
                        ),
                    );
                }
            }
        }

        // P1 (obs extension): gradient-bearing values at metric-recording
        // call sites. Instrumentation is written fully qualified
        // (`lazydp_obs::metrics().trainer.steps.add(n)`), so the
        // `lazydp_obs` ident anchors the statement; any grad/norm ident
        // inside the recorded argument list is flagged exactly like a
        // format-macro argument.
        if (name == "add" || name == "record" || name == "set" || name == "set_f64")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && statement_mentions(&toks, i, "lazydp_obs")
        {
            if let Some(arg) = sensitive_macro_arg(&toks, i + 1) {
                push(
                    "P1",
                    t,
                    format!(
                        "metric `.{name}(…)` records gradient-bearing value \
                         `{arg}` in non-test code: lazydp_obs metrics carry \
                         counts, bytes, durations, and ε only — never raw \
                         gradients or norms"
                    ),
                );
            }
        }

        // P1 (fault extension): fault-injection decisions. `point`,
        // `decide`, and `injected_io_error` take a (site, ordinal) pair
        // that must derive from operation counts only — an ordinal (or
        // plan rule) computed from a gradient-bearing value would make
        // the failure schedule data-dependent, leaking per-example
        // information through fault counters, retry timing, and which
        // operations fail. The `lazydp_fault` ident anchors the
        // statement, mirroring the obs extension above.
        if (name == "point" || name == "decide" || name == "injected_io_error")
            && statement_mentions(&toks, i, "lazydp_fault")
        {
            if let Some(arg) = sensitive_macro_arg(&toks, i + 1) {
                push(
                    "P1",
                    t,
                    format!(
                        "fault-injection `{name}(…)` takes gradient-bearing \
                         value `{arg}` in non-test code: fault sites are keyed \
                         by (site, operation ordinal) only — a data-dependent \
                         failure schedule leaks per-example information \
                         through the fault counters"
                    ),
                );
            }
        }

        // P1 (obs extension): span names. The lexer drops string-literal
        // contents, so the raw source line is scanned for gradient
        // vocabulary alongside the ident scan of the macro arguments.
        if name == "span" && i + 1 < toks.len() && toks[i + 1].is_punct('!') {
            let line_text = lines
                .get(t.line as usize - 1)
                .map_or(String::new(), |l| l.to_lowercase());
            let bad_name = line_text.contains("grad") || line_text.contains("norm");
            if bad_name || sensitive_macro_arg(&toks, i + 2).is_some() {
                push(
                    "P1",
                    t,
                    "`span!` name or argument mentions a gradient-bearing \
                     value in non-test code: span names are exported to trace \
                     files and must carry phase labels only"
                        .to_string(),
                );
            }
        }

        // O1: obs read APIs outside the sanctioned readers. The loop
        // already skips test regions, so only library/binary/example hot
        // paths reach this check.
        if !(in_obs || in_bench)
            && (name == "capture_metrics" || name == "take_trace_events" || name == "obs_read")
        {
            push(
                "O1",
                t,
                format!(
                    "obs read API `{name}` outside crates/obs and \
                     crates/bench: observability is write-only from hot \
                     paths — recorded values may reach reports via \
                     lazydp_obs::export, never training code; move the read \
                     into bench or a test"
                ),
            );
        }

        // P2: foreign randomness.
        if !in_rng {
            if ENTROPY_IDENTS.contains(&name) {
                push(
                    "P2",
                    t,
                    format!(
                        "`{name}` outside lazydp_rng: noise must come from \
                         the owned, replayable GaussianSampler/CounterRng \
                         streams, never ambient entropy"
                    ),
                );
            } else if name == "rand"
                && i + 2 < toks.len()
                && toks[i + 1].is_punct(':')
                && toks[i + 2].is_punct(':')
            {
                push(
                    "P2",
                    t,
                    "direct `rand::` path outside lazydp_rng: sample through \
                     lazydp_rng's owned streams instead"
                        .to_string(),
                );
            }
        }
    }

    // D5: crate roots must forbid unsafe code (checked on the whole
    // token stream — attribute position does not matter lexically).
    if is_crate_root(rel_path) && !has_forbid_unsafe(&toks) {
        out.push(Violation {
            rule: "D5",
            path: rel_path.to_string(),
            line: 1,
            col: 1,
            snippet: snippet(1),
            message: "crate root is missing `#![forbid(unsafe_code)]`: every \
                      crate in the workspace forbids unsafe code"
                .to_string(),
        });
    }

    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

const FORMAT_MACROS: &[&str] = &[
    "println", "eprintln", "print", "eprint", "format", "write", "writeln", "dbg",
];

const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "getrandom",
];

/// Whether `rel_path` is a crate root (`src/lib.rs` of the facade or of
/// any `crates/*` member).
fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/")
            && rel_path.ends_with("/src/lib.rs")
            && rel_path.matches('/').count() == 3)
}

fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(4).any(|w| {
        w[0].is_ident("forbid")
            && w[1].is_punct('(')
            && w[2].is_ident("unsafe_code")
            && w[3].is_punct(')')
    })
}

/// D4's float-evidence heuristic: a `.sum`/`.fold` call is flagged when
/// float-ness is lexically evident. Returns a short description of the
/// evidence, or `None` if the reduction looks integral/unknowable.
///
/// Evidence, in order:
/// 1. a `::<… f32/f64 …>` turbofish (an integral turbofish proves the
///    opposite and suppresses the heuristic entirely),
/// 2. a float literal or `f32`/`f64` identifier in the surrounding
///    statement (bounded window delimited by `;`/`{`/`}`).
///
/// The heuristic can miss reductions whose float-ness only shows in a
/// signature elsewhere (false negatives are acceptable; the rule is a
/// ratchet, not a proof), but it never needs type inference.
fn float_reduction_evidence(toks: &[Token], i: usize) -> Option<&'static str> {
    // Turbofish after `.sum`/`.fold`.
    if i + 3 < toks.len()
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && toks[i + 3].is_punct('<')
    {
        let mut j = i + 4;
        let mut depth = 1i32;
        let mut float = false;
        let mut integral = false;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => depth -= 1,
                TokenKind::Ident => match toks[j].text.as_str() {
                    "f32" | "f64" => float = true,
                    "u8" | "u16" | "u32" | "u64" | "u128" | "usize" | "i8" | "i16" | "i32"
                    | "i64" | "i128" | "isize" => integral = true,
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        }
        if float {
            return Some("f32/f64 turbofish");
        }
        if integral {
            return None; // provably integral
        }
    }
    // Statement window scan.
    const WINDOW: usize = 64;
    let start = (0..i)
        .rev()
        .take(WINDOW)
        .find(|&j| matches!(toks[j].kind, TokenKind::Punct(';' | '{' | '}')))
        .map_or(i.saturating_sub(WINDOW), |j| j + 1);
    let end = (i..toks.len())
        .take(WINDOW)
        .find(|&j| matches!(toks[j].kind, TokenKind::Punct(';' | '{' | '}')))
        .unwrap_or((i + WINDOW).min(toks.len()));
    for t in &toks[start..end] {
        match &t.kind {
            TokenKind::Float => return Some("float literal in statement"),
            TokenKind::Ident if t.text == "f32" || t.text == "f64" => {
                return Some("f32/f64 in statement")
            }
            _ => {}
        }
    }
    None
}

/// Whether the statement containing token `i` mentions identifier
/// `ident` (backward scan to the statement start — `;`/`{`/`}` — with
/// the same bounded window as the D4 heuristic). Used to anchor the
/// P1 metric-site checks on fully-qualified `lazydp_obs` call sites.
fn statement_mentions(toks: &[Token], i: usize, ident: &str) -> bool {
    const WINDOW: usize = 64;
    let start = (0..i)
        .rev()
        .take(WINDOW)
        .find(|&j| matches!(toks[j].kind, TokenKind::Punct(';' | '{' | '}')))
        .map_or(i.saturating_sub(WINDOW), |j| j + 1);
    toks[start..i].iter().any(|t| t.is_ident(ident))
}

/// If the macro argument list opening at token `open_paren_idx` mentions
/// a gradient-bearing identifier, returns that identifier.
fn sensitive_macro_arg(toks: &[Token], open_paren_idx: usize) -> Option<String> {
    let open = toks.get(open_paren_idx)?;
    let close = match open.kind {
        TokenKind::Punct('(') => ')',
        TokenKind::Punct('[') => ']',
        TokenKind::Punct('{') => '}',
        _ => return None,
    };
    let open_c = match open.kind {
        TokenKind::Punct(c) => c,
        _ => unreachable!(),
    };
    let mut depth = 0i32;
    for t in &toks[open_paren_idx..] {
        match t.kind {
            TokenKind::Punct(c) if c == open_c => depth += 1,
            TokenKind::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Ident => {
                let lower = t.text.to_lowercase();
                if t.text == "SparseGrad" || lower.contains("grad") || lower.contains("norm") {
                    return Some(t.text.clone());
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_detection_skips_cfg_test_mods() {
        let src = "fn real() { let m: HashMap<u8,u8> = x(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let s: HashSet<u8> = y(); }\n}\n";
        let v = check_source("crates/model/src/fake.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "D1");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn real() { let m: HashMap<u8,u8> = x(); }\n";
        let v = check_source("crates/model/src/fake.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn rule_table_ids_are_unique() {
        let mut ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len());
        assert!(rule_known("D1") && rule_known("P2") && !rule_known("Z9"));
    }
}
