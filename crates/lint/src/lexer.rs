//! A minimal hand-rolled Rust lexer.
//!
//! The linter's rules only need a token stream that is *reliable about
//! what is code and what is not*: string literals, char literals, line
//! and (nested) block comments, doc comments, and raw strings must never
//! produce identifier tokens, or a rule pattern mentioned in a comment
//! would trip the rule. Everything else is deliberately simple — no
//! parsing, no spans beyond `line:column`, no dependency on `syn` (the
//! build environment is offline; the linter must never be the component
//! that fails to build).

/// What a [`Token`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#mod`, …).
    Ident,
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`0.5`, `1e-3`, `2f32`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); contents
    /// are not retained.
    Str,
    /// Char literal (`'a'`, `'\n'`, `b'x'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `:`, `(`, …).
    Punct(char),
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Source text for `Ident`, `Int`, and `Float` tokens; empty for
    /// strings/chars (contents never matter to a rule) and single-char
    /// for punctuation.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

struct Lexer<'a> {
    chars: std::str::Chars<'a>,
    /// Lookahead buffer (we need up to 3 chars of peek).
    peeked: Vec<char>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars(),
            peeked: Vec::new(),
            line: 1,
            col: 1,
        }
    }

    fn peek_at(&mut self, n: usize) -> Option<char> {
        while self.peeked.len() <= n {
            self.peeked.push(self.chars.next()?);
        }
        Some(self.peeked[n])
    }

    fn peek(&mut self) -> Option<char> {
        self.peek_at(0)
    }

    fn bump(&mut self) -> Option<char> {
        let c = if self.peeked.is_empty() {
            self.chars.next()?
        } else {
            self.peeked.remove(0)
        };
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_line_comment(&mut self) {
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn eat_block_comment(&mut self) {
        // Called after consuming `/*`; block comments nest in Rust.
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    fn eat_string(&mut self) {
        // Called after consuming the opening `"`.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    fn eat_raw_string(&mut self, hashes: usize) {
        // Called after consuming `r##…#"`; ends at `"##…#`.
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for _ in 0..hashes {
                    if self.peek() != Some('#') {
                        continue 'outer;
                    }
                    self.bump();
                }
                break;
            }
        }
    }

    fn eat_ident(&mut self, first: char) -> String {
        let mut s = String::new();
        s.push(first);
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn eat_number(&mut self, first: char) -> (String, bool) {
        // Returns (text, is_float).
        let mut s = String::new();
        s.push(first);
        let mut is_float = false;
        let radix_prefixed =
            first == '0' && matches!(self.peek(), Some('x' | 'o' | 'b' | 'X' | 'O' | 'B'));
        if radix_prefixed {
            s.push(self.bump().expect("peeked"));
            while let Some(c) = self.peek() {
                if c.is_alphanumeric() || c == '_' {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            return (s, false);
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `.` followed by a digit (so `1..x` and
        // `1.method()` stay integers).
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            s.push(self.bump().expect("peeked")); // '.'
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || c == '_' {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(), Some('e' | 'E')) {
            let sign_ok = matches!(self.peek_at(1), Some(c) if c.is_ascii_digit())
                || (matches!(self.peek_at(1), Some('+' | '-'))
                    && matches!(self.peek_at(2), Some(c) if c.is_ascii_digit()));
            if sign_ok {
                is_float = true;
                s.push(self.bump().expect("peeked")); // e/E
                if matches!(self.peek(), Some('+' | '-')) {
                    s.push(self.bump().expect("peeked"));
                }
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() || c == '_' {
                        s.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`f32`, `u64`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            is_float = true;
        }
        s.push_str(&suffix);
        (s, is_float)
    }
}

/// Lexes `src` into tokens, discarding comments and literal contents.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    loop {
        let (line, col) = (lx.line, lx.col);
        let Some(c) = lx.bump() else { break };
        match c {
            c if c.is_whitespace() => {}
            '/' => match lx.peek() {
                Some('/') => lx.eat_line_comment(),
                Some('*') => {
                    lx.bump();
                    lx.eat_block_comment();
                }
                _ => toks.push(Token {
                    kind: TokenKind::Punct('/'),
                    text: "/".into(),
                    line,
                    col,
                }),
            },
            '"' => {
                lx.eat_string();
                toks.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                    col,
                });
            }
            'r' | 'b' => {
                // Raw strings (`r"…"`, `r#"…"#`), byte strings (`b"…"`,
                // `br#"…"#`), byte chars (`b'x'`), raw idents (`r#mod`)
                // — or just an identifier starting with r/b.
                let mut hashes = 0usize;
                while lx.peek_at(hashes) == Some('#') {
                    hashes += 1;
                }
                let after_hashes = lx.peek_at(hashes);
                if c == 'b' && hashes == 0 && after_hashes == Some('\'') {
                    lx.bump(); // '
                    eat_char_literal(&mut lx);
                    toks.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line,
                        col,
                    });
                } else if after_hashes == Some('"') {
                    for _ in 0..=hashes {
                        lx.bump(); // hashes + opening quote
                    }
                    if hashes == 0 && c == 'b' {
                        lx.eat_string();
                    } else {
                        lx.eat_raw_string(hashes);
                    }
                    toks.push(Token {
                        kind: TokenKind::Str,
                        text: String::new(),
                        line,
                        col,
                    });
                } else if c == 'b' && lx.peek() == Some('r') && {
                    let mut h = 1usize;
                    while lx.peek_at(h) == Some('#') {
                        h += 1;
                    }
                    lx.peek_at(h) == Some('"')
                } {
                    lx.bump(); // r
                    let mut h = 0usize;
                    while lx.peek() == Some('#') {
                        lx.bump();
                        h += 1;
                    }
                    lx.bump(); // "
                    lx.eat_raw_string(h);
                    toks.push(Token {
                        kind: TokenKind::Str,
                        text: String::new(),
                        line,
                        col,
                    });
                } else if c == 'r'
                    && hashes == 1
                    && after_hashes.is_some_and(|a| a.is_alphanumeric() || a == '_')
                {
                    lx.bump(); // #
                    let first = lx.bump().expect("peeked");
                    let text = lx.eat_ident(first);
                    toks.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                        col,
                    });
                } else {
                    let text = lx.eat_ident(c);
                    toks.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                        col,
                    });
                }
            }
            '\'' => {
                // Char literal vs lifetime.
                let one = lx.peek();
                let two = lx.peek_at(1);
                let is_char = matches!(one, Some('\\')) || (two == Some('\'') && one != Some('\''));
                if is_char {
                    eat_char_literal(&mut lx);
                    toks.push(Token {
                        kind: TokenKind::Char,
                        text: String::new(),
                        line,
                        col,
                    });
                } else {
                    let mut text = String::new();
                    while let Some(c) = lx.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            lx.bump();
                        } else {
                            break;
                        }
                    }
                    toks.push(Token {
                        kind: TokenKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let (text, is_float) = lx.eat_number(c);
                toks.push(Token {
                    kind: if is_float {
                        TokenKind::Float
                    } else {
                        TokenKind::Int
                    },
                    text,
                    line,
                    col,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let text = lx.eat_ident(c);
                toks.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            c => toks.push(Token {
                kind: TokenKind::Punct(c),
                text: c.to_string(),
                line,
                col,
            }),
        }
    }
    toks
}

fn eat_char_literal(lx: &mut Lexer<'_>) {
    // Called after the opening `'`.
    match lx.bump() {
        Some('\\') => {
            lx.bump(); // escaped char (enough for \n, \', \\, \u{…} start)
            while lx.peek().is_some() && lx.peek() != Some('\'') {
                lx.bump(); // rest of \u{XXXX}
            }
            lx.bump(); // closing '
        }
        Some(_) => {
            lx.bump(); // closing '
        }
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap /* nested */ still comment */
            /// doc: HashMap
            let s = "HashMap"; let r = r#"HashMap"#; let b = b"HashMap";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(ids.contains(&"str".to_string()));
        let toks = lex("'a 'x' '\\''");
        assert_eq!(toks[0].kind, TokenKind::Lifetime);
        assert_eq!(toks[1].kind, TokenKind::Char);
        assert_eq!(toks[2].kind, TokenKind::Char);
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let toks = lex("1 1.5 1e-3 2f32 3u64 0xff 1_000 4.0f64 1..2");
        let kinds: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| (t.text.clone(), t.kind.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("1".into(), TokenKind::Int),
                ("1.5".into(), TokenKind::Float),
                ("1e-3".into(), TokenKind::Float),
                ("2f32".into(), TokenKind::Float),
                ("3u64".into(), TokenKind::Int),
                ("0xff".into(), TokenKind::Int),
                ("1_000".into(), TokenKind::Int),
                ("4.0f64".into(), TokenKind::Float),
                ("1".into(), TokenKind::Int),
                ("2".into(), TokenKind::Int),
            ]
        );
    }

    #[test]
    fn positions_are_line_col() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_idents_lex_as_idents() {
        let ids = idents("let r#mod = 1; br#\"HashSet\"#;");
        assert!(ids.contains(&"mod".to_string()));
        assert!(!ids.contains(&"HashSet".to_string()));
    }
}
