//! `lazydp-lint` — workspace static analysis that machine-checks the
//! determinism & privacy contract of the LazyDP reproduction.
//!
//! The reproduction's value rests on two invariants that refactors can
//! silently break: **bitwise determinism** across threads/shards/backends
//! (the LazyDP ≡ eager DP-SGD equivalence), and **DP hygiene** (model
//! state only ever leaves through the clip→noise release path). This
//! crate turns the prose contract in `ARCHITECTURE.md` into a CI gate:
//! a dependency-free, hand-rolled lexer (strings, char literals, nested
//! comments, and attributes are understood; no `syn`, so the check
//! builds offline) feeds a seven-rule engine, and every exemption lives
//! in `lint.toml` with a mandatory written justification.
//!
//! # Rules
//!
//! See [`rules::RULES`] (or run `lazydp-lint rules`): D1 (no
//! `HashMap`/`HashSet` in non-test code), D2 (no wall clock outside
//! `crates/bench`), D3 (no raw `thread::{spawn,scope}` outside
//! `lazydp_exec`), D4 (no float `.sum()`/`.fold(…)` outside
//! `lazydp_tensor`), D5 (`#![forbid(unsafe_code)]` in every crate root),
//! P1 (no debug-printing gradient-bearing values), P2 (no `rand::` or
//! entropy-seeded sampling outside `lazydp_rng`).
//!
//! # CLI
//!
//! ```text
//! cargo run -p lazydp-lint -- check [--json] [--root DIR] [--allowlist FILE]
//! cargo run -p lazydp-lint -- rules
//! ```
//!
//! # Stability contract (for tooling)
//!
//! **Exit codes** are stable: `0` = clean (possibly with stale-allowlist
//! warnings), `1` = at least one non-allowlisted violation, `2` = usage,
//! I/O, or `lint.toml` configuration error.
//!
//! **`--json` schema** (`schema_version` is bumped on any breaking
//! change; additions are non-breaking):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "root": "…",            // the scanned workspace root as given
//!   "files_scanned": 123,
//!   "rules": ["D1", "…"],   // the rule IDs this binary knows
//!   "clean": true,
//!   "violations":   [ {"rule", "path", "line", "column", "message", "snippet"} ],
//!   "allowed":      [ {…same fields…, "reason"} ],
//!   "stale_allows": [ {"rule", "path", "line"|null, "reason"} ]
//! }
//! ```
//!
//! Paths are workspace-relative with forward slashes; lines and columns
//! are 1-based. `violations` is sorted by `(path, line, column, rule)`.
//!
//! # Example
//!
//! ```
//! use lazydp_lint::rules::check_source;
//!
//! let bad = "use std::collections::HashMap;\n";
//! let v = check_source("crates/model/src/x.rs", bad);
//! assert_eq!(v[0].rule, "D1");
//! assert_eq!((v[0].line, v[0].col), (1, 23));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use report::Report;
use std::path::Path;

/// Runs the full check: walk `root`, lint every file, apply the
/// allowlist at `allowlist_path` (default `<root>/lint.toml`; a missing
/// default allowlist means "no exemptions").
///
/// # Errors
///
/// Returns a message (exit code 2 territory) on I/O failure or a
/// malformed allowlist.
pub fn run_check(root: &Path, allowlist_path: Option<&Path>) -> Result<Report, String> {
    let default_path = root.join("lint.toml");
    let entries = match allowlist_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("reading allowlist {}: {e}", p.display()))?;
            allowlist::parse(&text)?
        }
        None if default_path.is_file() => {
            let text = std::fs::read_to_string(&default_path)
                .map_err(|e| format!("reading {}: {e}", default_path.display()))?;
            allowlist::parse(&text)?
        }
        None => Vec::new(),
    };

    let files = walk::collect_files(root)?;
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    let mut used = vec![false; entries.len()];
    for rel in &files {
        let source =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        for v in rules::check_source(rel, &source) {
            match entries.iter().position(|e| e.matches(&v)) {
                Some(i) => {
                    used[i] = true;
                    allowed.push((v, entries[i].reason.clone()));
                }
                None => violations.push(v),
            }
        }
    }
    let stale_allows = entries
        .into_iter()
        .zip(used)
        .filter_map(|(e, u)| (!u).then_some(e))
        .collect();
    Ok(Report {
        root: root.display().to_string(),
        files_scanned: files.len(),
        violations,
        allowed,
        stale_allows,
    })
}
