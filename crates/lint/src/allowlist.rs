//! The `lint.toml` allowlist: every exemption from a rule must be
//! written down **with a justification**.
//!
//! The format is a small TOML subset parsed by hand (the linter has no
//! dependencies): an array of `[[allow]]` tables with string keys
//! `rule`, `path`, `reason` and an optional integer `line`.
//!
//! ```toml
//! # Justified exemptions only. `reason` is mandatory.
//! [[allow]]
//! rule = "D1"
//! path = "crates/store/src/cache.rs"
//! reason = "page->frame map is point-lookup only; eviction order comes from the clock hand"
//! ```
//!
//! An entry without a `line` covers every violation of `rule` in `path`;
//! with a `line` it covers exactly that line. Entries that match nothing
//! are reported as *stale* so the file cannot rot.

use crate::rules::{rule_known, Violation};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID the exemption applies to.
    pub rule: String,
    /// Workspace-relative path (forward slashes) the exemption covers.
    pub path: String,
    /// Optional 1-based line restriction.
    pub line: Option<u32>,
    /// The mandatory written justification.
    pub reason: String,
}

impl AllowEntry {
    /// Whether this entry suppresses `v`.
    #[must_use]
    pub fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule && self.path == v.path && self.line.is_none_or(|l| l == v.line)
    }
}

/// Parses `lint.toml` text into entries.
///
/// # Errors
///
/// Returns a message naming the offending line for: unknown keys or
/// rules, malformed lines, keys outside an `[[allow]]` table, and
/// entries missing `rule`, `path`, or a non-empty `reason`.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    #[derive(Default)]
    struct Partial {
        rule: Option<String>,
        path: Option<String>,
        line: Option<u32>,
        reason: Option<String>,
        at_line: usize,
    }
    fn finish(p: Partial) -> Result<AllowEntry, String> {
        let at = p.at_line;
        let rule = p
            .rule
            .ok_or(format!("[[allow]] at line {at}: missing `rule`"))?;
        if !rule_known(&rule) {
            return Err(format!("[[allow]] at line {at}: unknown rule `{rule}`"));
        }
        let path = p
            .path
            .ok_or(format!("[[allow]] at line {at}: missing `path`"))?;
        let reason = p
            .reason
            .ok_or(format!("[[allow]] at line {at}: missing `reason`"))?;
        if reason.trim().len() < 10 {
            return Err(format!(
                "[[allow]] at line {at}: `reason` must be a written \
                 justification (got {reason:?})"
            ));
        }
        Ok(AllowEntry {
            rule,
            path,
            line: p.line,
            reason,
        })
    }

    let mut entries = Vec::new();
    let mut cur: Option<Partial> = None;
    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = cur.take() {
                entries.push(finish(p)?);
            }
            cur = Some(Partial {
                at_line: ln,
                ..Partial::default()
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint.toml line {ln}: expected `key = value`, got {raw:?}"
            ));
        };
        let Some(p) = cur.as_mut() else {
            return Err(format!(
                "lint.toml line {ln}: `{}` outside an [[allow]] table",
                key.trim()
            ));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "rule" => p.rule = Some(parse_string(value, ln)?),
            "path" => p.path = Some(parse_string(value, ln)?),
            "reason" => p.reason = Some(parse_string(value, ln)?),
            "line" => {
                p.line = Some(value.parse().map_err(|_| {
                    format!("lint.toml line {ln}: `line` must be an integer, got {value:?}")
                })?);
            }
            other => {
                return Err(format!("lint.toml line {ln}: unknown key `{other}`"));
            }
        }
    }
    if let Some(p) = cur.take() {
        entries.push(finish(p)?);
    }
    Ok(entries)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_string(value: &str, ln: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].replace("\\\"", "\""))
    } else {
        Err(format!(
            "lint.toml line {ln}: expected a double-quoted string, got {value:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_comments() {
        let text = r##"
# header comment
[[allow]]
rule = "D1"            # trailing comment
path = "crates/store/src/cache.rs"
reason = "lookup-only map, never iterated"

[[allow]]
rule = "D4"
path = "crates/data/src/trace.rs"
line = 257
reason = "sequential fixed-order f64 reduction"
"##;
        let e = parse(text).expect("parses");
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].rule, "D1");
        assert_eq!(e[0].line, None);
        assert_eq!(e[1].line, Some(257));
    }

    #[test]
    fn rejects_missing_or_trivial_reason() {
        let missing = "[[allow]]\nrule = \"D1\"\npath = \"src/lib.rs\"\n";
        assert!(parse(missing).unwrap_err().contains("missing `reason`"));
        let trivial = "[[allow]]\nrule = \"D1\"\npath = \"src/lib.rs\"\nreason = \"ok\"\n";
        assert!(parse(trivial)
            .unwrap_err()
            .contains("written justification"));
    }

    #[test]
    fn rejects_unknown_rule_and_key() {
        let bad_rule = "[[allow]]\nrule = \"Z9\"\npath = \"x\"\nreason = \"long enough reason\"\n";
        assert!(parse(bad_rule).unwrap_err().contains("unknown rule"));
        let bad_key = "[[allow]]\nrule = \"D1\"\nfile = \"x\"\n";
        assert!(parse(bad_key).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn line_restriction_matches() {
        let e = AllowEntry {
            rule: "D1".into(),
            path: "a.rs".into(),
            line: Some(5),
            reason: "r".into(),
        };
        let mk = |line| Violation {
            rule: "D1",
            path: "a.rs".into(),
            line,
            col: 1,
            snippet: String::new(),
            message: String::new(),
        };
        assert!(e.matches(&mk(5)));
        assert!(!e.matches(&mk(6)));
    }
}
