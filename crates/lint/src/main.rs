//! CLI for `lazydp-lint`. See the library docs for the stability
//! contract (exit codes and the `--json` schema).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
lazydp-lint — machine-checks the determinism & privacy contract

USAGE:
    lazydp-lint check [--json] [--root DIR] [--allowlist FILE]
    lazydp-lint rules

`check` walks src/, examples/, and crates/*/{src,examples} under the
workspace root (default: the nearest ancestor of the current directory
containing lint.toml), reports violations as file:line:col spans with
rule IDs, and applies the justified exemptions in lint.toml.

EXIT CODES (stable): 0 clean, 1 violations, 2 usage/IO/config error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for r in lazydp_lint::rules::RULES {
                println!("{}  {}\n    invariant: {}", r.id, r.summary, r.invariant);
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut allowlist: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_err("--root needs a value"),
            },
            "--allowlist" => match it.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage_err("--allowlist needs a value"),
            },
            other => return usage_err(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.map_or_else(discover_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lazydp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match lazydp_lint::run_check(&root, allowlist.as_deref()) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("lazydp-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("lazydp-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory containing `lint.toml`.
fn discover_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
    let mut dir = cwd.as_path();
    loop {
        if dir.join("lint.toml").is_file() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => {
                return Err(format!(
                    "no lint.toml found in {} or any ancestor; pass --root",
                    cwd.display()
                ))
            }
        }
    }
}
