//! Report assembly and rendering (human text and the stable `--json`
//! schema documented at the crate root).

use crate::allowlist::AllowEntry;
use crate::rules::{Violation, RULES};

/// The result of one `check` run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Workspace root the run scanned (as given).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Violations not covered by any allowlist entry. Non-empty ⇒ the
    /// check fails (exit code 1).
    pub violations: Vec<Violation>,
    /// Violations suppressed by an allowlist entry, with the entry's
    /// justification.
    pub allowed: Vec<(Violation, String)>,
    /// Allowlist entries that matched nothing (stale; reported as
    /// warnings so `lint.toml` cannot rot, but not fatal).
    pub stale_allows: Vec<AllowEntry>,
}

impl Report {
    /// Whether the check passed.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            s.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    {}\n",
                v.path, v.line, v.col, v.rule, v.message, v.snippet
            ));
        }
        for e in &self.stale_allows {
            s.push_str(&format!(
                "warning: stale lint.toml entry matches nothing: rule {} path {}{}\n",
                e.rule,
                e.path,
                e.line.map(|l| format!(" line {l}")).unwrap_or_default()
            ));
        }
        s.push_str(&format!(
            "{} file(s) scanned, {} violation(s), {} allowlisted, {} stale allow(s)\n",
            self.files_scanned,
            self.violations.len(),
            self.allowed.len(),
            self.stale_allows.len()
        ));
        if self.clean() {
            s.push_str("lazydp-lint: clean\n");
        } else {
            s.push_str(
                "lazydp-lint: FAILED — fix the violation or add a justified lint.toml entry\n",
            );
        }
        s
    }

    /// Renders the stable JSON schema (`schema_version` 1; see the crate
    /// docs for the field contract).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"schema_version\": 1,\n");
        s.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"rules\": [{}],\n",
            RULES
                .iter()
                .map(|r| json_str(r.id))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!("  \"clean\": {},\n", self.clean()));
        s.push_str("  \"violations\": [\n");
        let items: Vec<String> = self
            .violations
            .iter()
            .map(|v| violation_json(v, None))
            .collect();
        s.push_str(&items.join(",\n"));
        if !items.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n  \"allowed\": [\n");
        let items: Vec<String> = self
            .allowed
            .iter()
            .map(|(v, reason)| violation_json(v, Some(reason)))
            .collect();
        s.push_str(&items.join(",\n"));
        if !items.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n  \"stale_allows\": [\n");
        let items: Vec<String> = self
            .stale_allows
            .iter()
            .map(|e| {
                format!(
                    "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}",
                    json_str(&e.rule),
                    json_str(&e.path),
                    e.line.map_or("null".to_string(), |l| l.to_string()),
                    json_str(&e.reason)
                )
            })
            .collect();
        s.push_str(&items.join(",\n"));
        if !items.is_empty() {
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn violation_json(v: &Violation, reason: Option<&str>) -> String {
    let mut s = format!(
        "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"column\": {}, \
         \"message\": {}, \"snippet\": {}",
        json_str(v.rule),
        json_str(&v.path),
        v.line,
        v.col,
        json_str(&v.message),
        json_str(&v.snippet)
    );
    if let Some(r) = reason {
        s.push_str(&format!(", \"reason\": {}", json_str(r)));
    }
    s.push('}');
    s
}

/// JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            root: ".".into(),
            files_scanned: 2,
            violations: vec![Violation {
                rule: "D1",
                path: "crates/x/src/a.rs".into(),
                line: 3,
                col: 7,
                snippet: "let m: HashMap<u8, \"q\"> = x();".into(),
                message: "msg".into(),
            }],
            allowed: vec![],
            stale_allows: vec![],
        }
    }

    #[test]
    fn text_report_has_file_line_and_rule() {
        let t = sample().to_text();
        assert!(t.contains("crates/x/src/a.rs:3:7: [D1]"));
        assert!(t.contains("FAILED"));
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let j = sample().to_json();
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\\\"q\\\""), "quotes escaped: {j}");
        // Sanity: balanced braces/brackets.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
