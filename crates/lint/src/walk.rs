//! Source-tree walker: which files the contract applies to.
//!
//! Scanned, relative to the workspace root: `src/`, `examples/`, and
//! every `crates/*/{src,examples}/`. Skipped: `tests/` and `benches/`
//! directories (integration tests and criterion benches are test code),
//! `target/`, and `vendor/` (third-party stubs are outside the
//! contract).

use std::path::{Path, PathBuf};

/// Collects the workspace-relative paths (forward slashes, sorted) of
/// every `.rs` file the linter scans under `root`.
///
/// # Errors
///
/// Returns a message on I/O failure. A missing `crates/`, `src/`, or
/// `examples/` directory is not an error (partial checkouts lint fine).
pub fn collect_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for top in ["src", "examples"] {
        walk_dir(&root.join(top), root, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)
            .map_err(|e| format!("reading {}: {e}", crates.display()))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            walk_dir(&member.join("src"), root, &mut out)?;
            walk_dir(&member.join("examples"), root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

const SKIP_DIRS: &[&str] = &["tests", "benches", "target", "vendor"];

fn walk_dir(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk_dir(&path, root, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace_and_skips_vendor_and_tests() {
        // The lint crate lives at crates/lint inside the workspace.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = collect_files(&root).expect("walk");
        assert!(files.iter().any(|f| f == "src/lib.rs"));
        assert!(files.iter().any(|f| f == "crates/lint/src/walk.rs"));
        assert!(!files.iter().any(|f| f.starts_with("vendor/")));
        assert!(!files.iter().any(|f| f.contains("/tests/")));
        assert!(!files.iter().any(|f| f.contains("/benches/")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "deterministic order");
    }
}
