//! End-to-end training utility tests: every optimizer in the repo must
//! actually *learn* on the synthetic Criteo-style task, and the private
//! ones must pay for privacy in the expected places (noise work, loss).

use lazydp::data::{PoissonLoader, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{ClipStyle, DpConfig, EagerDpSgd, EanaOptimizer, Optimizer, SgdOptimizer};
use lazydp::lazy::{LazyDpConfig, LazyDpOptimizer, PrivateTrainer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

const TABLES: usize = 3;
const ROWS: u64 = 80;
const DIM: usize = 8;
const BATCH: usize = 48;
const STEPS: usize = 36;

fn setup() -> (Dlrm, SyntheticDataset) {
    let mut rng = Xoshiro256PlusPlus::seed_from(9);
    let model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, 192));
    (model, ds)
}

fn train(opt: &mut dyn Optimizer, model: &mut Dlrm, ds: &SyntheticDataset) -> (f64, f64) {
    let eval = ds.batch_of(&(0..192).collect::<Vec<_>>());
    let before = model.loss(&eval);
    let batches: Vec<_> = (0..=STEPS)
        .map(|i| {
            let ids: Vec<usize> = (0..BATCH).map(|k| (i * BATCH + k) % 192).collect();
            ds.batch_of(&ids)
        })
        .collect();
    for i in 0..STEPS {
        opt.step(model, &batches[i], Some(&batches[i + 1]));
    }
    opt.finalize(model);
    (before, model.loss(&eval))
}

#[test]
fn every_optimizer_learns() {
    let (model0, ds) = setup();
    // Mild privacy settings so utility is measurable in few steps.
    let dp = DpConfig::new(0.25, 4.0, 0.1, BATCH);
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    {
        let mut m = model0.clone();
        let mut o = SgdOptimizer::new(0.1);
        let (b, a) = train(&mut o, &mut m, &ds);
        results.push((o.name().to_owned(), b, a));
    }
    for style in [
        ClipStyle::PerExample,
        ClipStyle::Reweighted,
        ClipStyle::Fast,
    ] {
        let mut m = model0.clone();
        let mut o = EagerDpSgd::new(dp, style, CounterNoise::new(11));
        let (b, a) = train(&mut o, &mut m, &ds);
        results.push((o.name().to_owned(), b, a));
    }
    {
        let mut m = model0.clone();
        let mut o = EanaOptimizer::new(dp, CounterNoise::new(11));
        let (b, a) = train(&mut o, &mut m, &ds);
        results.push((o.name().to_owned(), b, a));
    }
    for ans in [true, false] {
        let mut m = model0.clone();
        let mut o = LazyDpOptimizer::new(LazyDpConfig::new(dp, ans), &m, CounterNoise::new(11));
        let (b, a) = train(&mut o, &mut m, &ds);
        results.push((o.name().to_owned(), b, a));
    }
    for (name, before, after) in &results {
        assert!(
            after < before,
            "{name} failed to learn: {before:.4} -> {after:.4}"
        );
    }
}

#[test]
fn more_noise_hurts_utility() {
    let (model0, ds) = setup();
    let run = |sigma: f64| -> f64 {
        let mut m = model0.clone();
        let dp = DpConfig::new(sigma, 2.0, 0.1, BATCH);
        let mut o = LazyDpOptimizer::new(LazyDpConfig::new(dp, true), &m, CounterNoise::new(13));
        let (_, after) = train(&mut o, &mut m, &ds);
        after
    };
    let quiet = run(0.05);
    let loud = run(12.0);
    assert!(
        quiet < loud,
        "σ=0.05 (loss {quiet:.4}) should beat σ=12 (loss {loud:.4})"
    );
}

#[test]
fn private_trainer_reports_consistent_budget_and_counters() {
    let (model0, ds) = setup();
    let loader = PoissonLoader::new(ds, BATCH, 3);
    let q = loader.sampling_rate();
    let cfg = LazyDpConfig::new(DpConfig::new(1.1, 1.0, 0.05, BATCH), true);
    let mut trainer = PrivateTrainer::make_private(model0, cfg, loader, CounterNoise::new(4), q);
    let stats = trainer.train_steps(12);
    assert_eq!(stats.len(), 12);
    // Realized Poisson batch sizes average near nominal.
    let mean = stats.iter().map(|s| s.realized_batch).sum::<usize>() as f64 / stats.len() as f64;
    assert!(
        (mean - BATCH as f64).abs() < BATCH as f64 * 0.6,
        "mean batch {mean}"
    );
    let (eps, _) = trainer.epsilon(1e-6);
    assert!(eps > 0.0 && eps < 50.0, "ε = {eps}");
    let c = trainer.counters();
    assert_eq!(c.steps, 12);
    assert!(c.gaussian_samples > 0);
    assert!(c.history_reads > 0);
    let _final = trainer.finish();
}

#[test]
fn lazydp_noise_work_is_orders_below_eager_at_larger_tables() {
    // The speedup mechanism, measured functionally: grow the table 64×
    // and watch eager noise work grow with it while LazyDP's does not.
    let rng = Xoshiro256PlusPlus::seed_from(15);
    let dp = DpConfig::paper_default(16);
    let work = |rows: u64, lazy: bool| -> u64 {
        let mut model = Dlrm::new(DlrmConfig::tiny(2, rows, DIM), &mut rng.clone());
        let ds = SyntheticDataset::new(SyntheticConfig::small(2, rows, 64));
        let b0 = ds.batch_of(&(0..16).collect::<Vec<_>>());
        let b1 = ds.batch_of(&(16..32).collect::<Vec<_>>());
        if lazy {
            let mut o =
                LazyDpOptimizer::new(LazyDpConfig::new(dp, true), &model, CounterNoise::new(1));
            o.step(&mut model, &b0, Some(&b1));
            o.counters().gaussian_samples
        } else {
            let mut o = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(1));
            o.step(&mut model, &b0, None);
            o.counters().gaussian_samples
        }
    };
    let eager_small = work(128, false);
    let eager_big = work(8192, false);
    assert!(
        eager_big > eager_small * 20,
        "eager noise work must track table size: {eager_small} vs {eager_big}"
    );
    let lazy_small = work(128, true);
    let lazy_big = work(8192, true);
    assert!(
        lazy_big < lazy_small * 2,
        "LazyDP noise work must not track table size: {lazy_small} vs {lazy_big}"
    );
    assert!(
        eager_big > lazy_big * 50,
        "at 8192 rows the gap should be large: {eager_big} vs {lazy_big}"
    );
}

#[test]
fn trained_model_beats_chance_on_auc() {
    use lazydp::model::{auc, log_loss};
    use lazydp::tensor::ops::sigmoid;
    let (mut model, ds) = setup();
    let eval = ds.batch_of(&(0..192).collect::<Vec<_>>());
    let probs_of = |m: &Dlrm| -> Vec<f32> {
        m.forward(&eval)
            .logits()
            .iter()
            .map(|&z| sigmoid(z))
            .collect()
    };
    let before_auc = auc(&eval.labels, &probs_of(&model));
    let mut opt = LazyDpOptimizer::new(
        LazyDpConfig::new(DpConfig::new(0.2, 4.0, 0.1, BATCH), true),
        &model,
        CounterNoise::new(3),
    );
    let batches: Vec<_> = (0..=60)
        .map(|i| {
            let ids: Vec<usize> = (0..BATCH).map(|k| (i * BATCH + k) % 192).collect();
            ds.batch_of(&ids)
        })
        .collect();
    for i in 0..60 {
        opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
    }
    opt.finalize(&mut model);
    let probs = probs_of(&model);
    let after_auc = auc(&eval.labels, &probs);
    assert!(
        after_auc > 0.58,
        "trained AUC {after_auc} must clearly beat chance (started at {before_auc})"
    );
    assert!(after_auc > before_auc, "AUC must improve with training");
    assert!(log_loss(&eval.labels, &probs).is_finite());
}
