//! Steady-state allocation accounting for EANA.
//!
//! The `EanaScratch` refactor's contract: with a single noise thread
//! and in-memory tables, an `EanaOptimizer::step` allocates **zero**
//! heap bytes once warm-up has sized the scratch — the accessed-rows
//! noisy update draws into a reusable buffer via
//! `sparse_noisy_update_with`. See `alloc_common` for the harness; this
//! file holds exactly one test so no concurrent thread pollutes the
//! counters.

mod alloc_common;

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{DpConfig, EanaOptimizer, Optimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

#[test]
fn steady_state_eana_step_allocates_zero_bytes() {
    let mut rng = Xoshiro256PlusPlus::seed_from(37);
    let mut model = Dlrm::new(DlrmConfig::tiny(3, 64, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, 128));
    let batch_size = 16usize;
    let batches: Vec<MiniBatch> = (0..4)
        .map(|i| ds.batch_of(&(i * batch_size..(i + 1) * batch_size).collect::<Vec<_>>()))
        .collect();

    let cfg = DpConfig::new(0.8, 1.0, 0.05, batch_size).with_threads(1);
    let mut opt = EanaOptimizer::new(cfg, CounterNoise::new(41));

    alloc_common::assert_steady_state_zero_alloc("EANA", 8, 4, |i| {
        opt.step(&mut model, &batches[i % batches.len()], None);
    });
}
