//! The fused ghost-clipping backward contract, through the public
//! facade: `Dlrm::backward_clipped` (ghost norms + clip + clipped
//! aggregate in one chain, 2 GEMMs per MLP layer) is **bitwise
//! identical** to the two-pass path it replaced
//! (`per_example_grad_norms` → `clip_weights` → `backward(Some(&w))`,
//! 3 GEMMs per layer) — across batch sizes, executor thread counts,
//! and clip thresholds including the all-clipped and none-clipped
//! edges.

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::clip_weights;
use lazydp::model::{Dlrm, DlrmConfig, DlrmGrads};
use lazydp::rng::Xoshiro256PlusPlus;

const TABLES: usize = 3;
const ROWS: u64 = 64;
const DIM: usize = 8;

fn setup(batch: usize) -> (Dlrm, MiniBatch) {
    let mut rng = Xoshiro256PlusPlus::seed_from(977);
    let model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, batch));
    let b = ds.batch_of(&(0..batch).collect::<Vec<_>>());
    (model, b)
}

/// Deterministic non-trivial logit gradient (e.g. logistic-loss-like
/// residuals of both signs and varying magnitude).
fn logit_grads(batch: usize) -> Vec<f32> {
    (0..batch)
        .map(|i| ((i as f32) * 0.37 - batch as f32 * 0.15).sin() * 0.8)
        .collect()
}

fn grads_bits_equal(a: &DlrmGrads, b: &DlrmGrads) -> bool {
    // PartialEq on f32 is what we want *almost* everywhere, but it
    // treats -0.0 == 0.0; compare through bits to pin sign-of-zero too.
    let key = |g: &DlrmGrads| {
        let mut v: Vec<u32> = Vec::new();
        for mlp in [&g.bottom, &g.top] {
            for l in &mlp.layers {
                v.extend(l.dw.as_slice().iter().map(|x| x.to_bits()));
                v.extend(l.db.iter().map(|x| x.to_bits()));
            }
        }
        for t in &g.tables {
            for (row, grad) in t.iter() {
                v.push(u32::try_from(row).expect("tiny tables"));
                v.extend(grad.iter().map(|x| x.to_bits()));
            }
        }
        v
    };
    key(a) == key(b)
}

#[test]
fn fused_clipped_backward_is_bitwise_two_pass_everywhere() {
    let initial = lazydp::exec::global_threads();
    for batch in [1usize, 5, 24] {
        let (model, b) = setup(batch);
        let cache = model.forward(&b);
        let gl = logit_grads(batch);

        // Thresholds: all-clipped (tiny C), realistic, none-clipped
        // (huge C, every weight exactly 1.0).
        for c in [1e-6f64, 0.5, 1e9] {
            lazydp::exec::set_global_threads(1);
            let norms = model.per_example_grad_norms(&cache, &b, &gl);
            let w = clip_weights(&norms, c);
            if c == 1e9 {
                assert!(w.iter().all(|&x| x == 1.0), "huge C must clip nothing");
            }
            let two_pass = model.backward(&cache, &b, &gl, Some(&w));

            for threads in [1usize, 2, 4] {
                lazydp::exec::set_global_threads(threads);
                let mut seen_norms = Vec::new();
                let fused = model.backward_clipped(&cache, &b, &gl, |n, out| {
                    seen_norms.extend_from_slice(n);
                    *out = clip_weights(n, c);
                });
                assert_eq!(
                    seen_norms, norms,
                    "fused ghost norms differ (batch {batch}, C={c}, {threads} threads)"
                );
                assert!(
                    grads_bits_equal(&fused, &two_pass),
                    "fused != two-pass (batch {batch}, C={c}, {threads} threads)"
                );
            }
        }
    }
    lazydp::exec::set_global_threads(initial);
}
