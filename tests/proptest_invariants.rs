//! Property-based tests of the core invariants, across randomized
//! traces, shapes, and hyper-parameters.

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{clip_weights, ClipStyle, DpConfig, EagerDpSgd, Optimizer};
use lazydp::embedding::sparse::dedup_indices;
use lazydp::embedding::SparseGrad;
use lazydp::lazy::{aggregated_std, HistoryTable, LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;
use proptest::prelude::*;

/// Builds batches from a proptest-chosen access script so the trace
/// shape itself is randomized (hot rows, repeats, variable batch).
fn batches_from_script(
    tables: usize,
    rows: u64,
    script: &[Vec<u64>],
) -> (SyntheticDataset, Vec<MiniBatch>) {
    let ds = SyntheticDataset::new(SyntheticConfig::small(tables, rows, 64));
    let batches = script
        .iter()
        .map(|accesses| {
            let n = accesses.len().max(1);
            let mut b = ds.batch_of(&(0..n).collect::<Vec<_>>());
            for t in 0..tables {
                let samples: Vec<Vec<u64>> = (0..n)
                    .map(|i| vec![accesses[i % accesses.len().max(1)] % rows])
                    .collect();
                b.sparse[t] = lazydp::embedding::bag::BagIndices::from_samples(&samples);
            }
            b
        })
        .collect();
    (ds, batches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// LazyDP(w/o ANS) ≡ eager DP-SGD(F) for *arbitrary* access traces,
    /// not just the well-behaved loader ones.
    #[test]
    fn lazy_eager_equivalence_on_random_traces(
        script in proptest::collection::vec(
            proptest::collection::vec(0u64..40, 1..6), 3..7),
        seed in 0u64..1000,
    ) {
        let rows = 40u64;
        let (_, batches) = batches_from_script(2, rows, &script);
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        let model0 = Dlrm::new(DlrmConfig::tiny(2, rows, 4), &mut rng);
        let dp = DpConfig::new(0.8, 1.0, 0.05, 4);
        let steps = batches.len() - 1;

        let mut eager_model = model0.clone();
        let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(seed));
        for b in batches.iter().take(steps) {
            eager.step(&mut eager_model, b, None);
        }
        let mut lazy_model = model0;
        let mut lazy = LazyDpOptimizer::new(
            LazyDpConfig::new(dp, false),
            &lazy_model,
            CounterNoise::new(seed),
        );
        for i in 0..steps {
            lazy.step(&mut lazy_model, &batches[i], Some(&batches[i + 1]));
        }
        lazy.finalize_model(&mut lazy_model);
        for (t, (a, b)) in eager_model.tables.iter().zip(lazy_model.tables.iter()).enumerate() {
            let d = a.max_abs_diff(b);
            prop_assert!(d < 2e-3, "table {t} diverged by {d}");
        }
    }

    /// Clipping: after applying the clip weight, every per-example
    /// gradient norm is ≤ C (+ float slack).
    #[test]
    fn clipped_norms_never_exceed_threshold(
        c in 0.01f64..5.0,
        norms_sq in proptest::collection::vec(0.0f64..100.0, 1..40),
    ) {
        let w = clip_weights(&norms_sq, c);
        for (&n_sq, &wi) in norms_sq.iter().zip(w.iter()) {
            let clipped = n_sq.sqrt() * f64::from(wi);
            prop_assert!(clipped <= c * (1.0 + 1e-5), "{clipped} > {c}");
            // And clipping never flips direction or overshoots.
            prop_assert!((0.0..=1.0 + 1e-6).contains(&f64::from(wi)));
        }
    }

    /// Coalescing preserves the per-row gradient sums exactly.
    #[test]
    fn coalesce_preserves_row_sums(
        entries in proptest::collection::vec((0u64..20, proptest::collection::vec(-10.0f32..10.0, 3)), 0..30),
    ) {
        let mut g = SparseGrad::new(3);
        for (idx, vals) in &entries {
            g.push(*idx, vals);
        }
        let dense_before = g.to_dense_map();
        let merged = g.coalesce();
        let dense_after = g.to_dense_map();
        prop_assert_eq!(dense_before.len(), dense_after.len());
        for (idx, before) in &dense_before {
            let after = &dense_after[idx];
            for (a, b) in after.iter().zip(before.iter()) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
        // Entry count shrank by exactly the merged duplicates.
        prop_assert_eq!(g.len() + merged, entries.len());
        // And indices are now sorted unique.
        let idxs = g.indices();
        prop_assert!(idxs.windows(2).all(|w| w[0] < w[1]));
    }

    /// The HistoryTable's delay arithmetic: the delays handed out for a
    /// row across any access pattern sum to the final iteration count.
    #[test]
    fn history_delays_partition_time(
        access_iters in proptest::collection::btree_set(1u64..50, 0..12),
        horizon in 50u64..60,
    ) {
        let mut h = HistoryTable::new(1);
        let mut total = 0u64;
        for &it in &access_iters {
            total += h.take_delays(0, it);
        }
        total += h.take_delays(0, horizon);
        prop_assert_eq!(total, horizon, "delays must partition 1..=horizon");
    }

    /// ANS std scaling: a single aggregated draw has exactly the
    /// variance of the sum it replaces, for any delay count.
    #[test]
    fn ans_std_matches_sum_variance(delays in 0u64..10_000, std in 0.0f32..4.0) {
        let agg = aggregated_std(std, delays);
        let var_sum = f64::from(std) * f64::from(std) * delays as f64;
        let var_agg = f64::from(agg) * f64::from(agg);
        prop_assert!((var_agg - var_sum).abs() <= var_sum * 1e-5 + 1e-9);
    }

    /// DESIGN invariant #4 at the system level: a full LazyDP run —
    /// `step`s plus `finalize_model` — is **bitwise** identical for any
    /// executor width, on random Zipf-skewed access traces. Phase 1 of
    /// every noise plan is serial history bookkeeping and phase 2 is
    /// chunk-addressed sampling, so threads ∈ {1, 2, 3, 8} must agree
    /// exactly (not just within float slack).
    #[test]
    fn lazydp_training_is_thread_count_independent(
        exponent in 0.4f64..1.4,
        seed in 0u64..1000,
        ans in proptest::bool::ANY,
    ) {
        use lazydp::data::AccessDistribution;
        let rows = 48u64;
        let steps = 4usize;
        let dist = AccessDistribution::zipf(rows, exponent);
        let mut trace_rng = Xoshiro256PlusPlus::seed_from(seed ^ 0x5eed_7ace);
        let script: Vec<Vec<u64>> = (0..=steps)
            .map(|_| dist.sample_many(&mut trace_rng, 5))
            .collect();
        let (_, batches) = batches_from_script(2, rows, &script);
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        let model0 = Dlrm::new(DlrmConfig::tiny(2, rows, 4), &mut rng);
        let run = |threads: usize| -> Dlrm {
            let dp = DpConfig::new(0.8, 1.0, 0.05, 4).with_threads(threads);
            let mut model = model0.clone();
            let mut opt = LazyDpOptimizer::new(
                LazyDpConfig::new(dp, ans),
                &model,
                CounterNoise::new(seed),
            );
            for i in 0..steps {
                opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
            }
            opt.finalize_model(&mut model);
            model
        };
        let base = run(1);
        for threads in [2usize, 3, 8] {
            let m = run(threads);
            for (t, (a, b)) in base.tables.iter().zip(m.tables.iter()).enumerate() {
                prop_assert!(
                    a.max_abs_diff(b) == 0.0,
                    "table {t} changed at {threads} threads"
                );
            }
            for (a, b) in base
                .top
                .layers()
                .iter()
                .zip(m.top.layers().iter())
                .chain(base.bottom.layers().iter().zip(m.bottom.layers().iter()))
            {
                prop_assert!(
                    a.weight.max_abs_diff(&b.weight) == 0.0,
                    "MLP weights changed at {threads} threads"
                );
                prop_assert!(a.bias == b.bias, "MLP bias changed at {threads} threads");
            }
        }
    }

    /// The sharding tentpole invariant: a full LazyDP run — `step`s plus
    /// `finalize_model` — is **bitwise** identical for any sparse-state
    /// shard count, on random Zipf-skewed access traces. Each shard
    /// owns its rows' history and noise addressed by *global* row id,
    /// so shards ∈ {1, 2, 4, 8} must agree exactly.
    #[test]
    fn lazydp_training_is_shard_count_independent(
        exponent in 0.4f64..1.4,
        seed in 0u64..1000,
        ans in proptest::bool::ANY,
    ) {
        use lazydp::data::AccessDistribution;
        let rows = 48u64;
        let steps = 4usize;
        let dist = AccessDistribution::zipf(rows, exponent);
        let mut trace_rng = Xoshiro256PlusPlus::seed_from(seed ^ 0x0051_4a4d);
        let script: Vec<Vec<u64>> = (0..=steps)
            .map(|_| dist.sample_many(&mut trace_rng, 5))
            .collect();
        let (_, batches) = batches_from_script(2, rows, &script);
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        let model0 = Dlrm::new(DlrmConfig::tiny(2, rows, 4), &mut rng);
        let run = |shards: usize| -> Dlrm {
            let dp = DpConfig::new(0.8, 1.0, 0.05, 4).with_shards(shards);
            let mut model = model0.clone();
            let mut opt = LazyDpOptimizer::new(
                LazyDpConfig::new(dp, ans),
                &model,
                CounterNoise::new(seed),
            );
            for i in 0..steps {
                opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
            }
            opt.finalize_model(&mut model);
            model
        };
        let base = run(1);
        for shards in [2usize, 4, 8] {
            let m = run(shards);
            for (t, (a, b)) in base.tables.iter().zip(m.tables.iter()).enumerate() {
                prop_assert!(
                    a.max_abs_diff(b) == 0.0,
                    "table {t} changed at {shards} shards"
                );
            }
        }
    }

    /// The async-pipeline tentpole invariant: training through the
    /// background-thread `PrefetchLoader` produces the bitwise-same
    /// model as the synchronous `LookaheadLoader` over the same
    /// Zipf-skewed source — prefetching changes *when* batches are
    /// materialized, never *what* the optimizer sees.
    #[test]
    fn prefetch_loader_matches_synchronous_loader(
        exponent in 0.4f64..1.4,
        seed in 0u64..1000,
        shards in 1usize..5,
    ) {
        use lazydp::data::{AccessDistribution, FixedBatchLoader, SyntheticConfig, SyntheticDataset};
        use lazydp::lazy::PrivateTrainer;
        let rows = 64u64;
        let tables = 2usize;
        let mk_loader = || {
            let cfg = SyntheticConfig::small(tables, rows, 128)
                .with_seed(seed)
                .with_distributions(
                    (0..tables).map(|_| AccessDistribution::zipf(rows, exponent)).collect(),
                );
            FixedBatchLoader::new(SyntheticDataset::new(cfg), 16)
        };
        let mut rng = Xoshiro256PlusPlus::seed_from(seed ^ 0x00f0_0d1e);
        let model0 = Dlrm::new(DlrmConfig::tiny(tables, rows, 4), &mut rng);
        let cfg = LazyDpConfig::new(
            DpConfig::new(0.8, 1.0, 0.05, 16).with_shards(shards),
            true,
        );
        let q = 16.0 / 128.0;
        let mut sync_t = PrivateTrainer::make_private(
            model0.clone(), cfg.clone(), mk_loader(), CounterNoise::new(seed), q);
        let _ = sync_t.train_steps(5);
        let sync_model = sync_t.finish();
        let mut pre_t = PrivateTrainer::make_private_prefetch(
            model0, cfg, mk_loader(), CounterNoise::new(seed), q);
        let _ = pre_t.train_steps(5);
        let pre_model = pre_t.finish();
        for (t, (a, b)) in sync_model.tables.iter().zip(pre_model.tables.iter()).enumerate() {
            prop_assert!(
                a.max_abs_diff(b) == 0.0,
                "table {t} diverged through the prefetch pipeline"
            );
        }
    }

    /// The out-of-core tentpole invariant: a full LazyDP run — `step`s
    /// plus `finalize_model` — on the paged `StoredTable` backend is
    /// **bitwise** identical to the in-memory run on Zipf-skewed
    /// traces, across page geometries, cache capacities (including a
    /// pathological 1-page cache), and shard counts {1, 4}. Paging
    /// changes where rows live, never their values.
    #[test]
    fn stored_backend_matches_memory_backend(
        exponent in 0.4f64..1.4,
        seed in 0u64..1000,
        page_rows in 1usize..9,
        cache_pages in 1usize..10,
        four_shards in proptest::bool::ANY,
    ) {
        use lazydp::data::AccessDistribution;
        use lazydp::store::{StorageConfig, StoredTable};
        let rows = 48u64;
        let steps = 4usize;
        let shards = if four_shards { 4usize } else { 1 };
        let dist = AccessDistribution::zipf(rows, exponent);
        let mut trace_rng = Xoshiro256PlusPlus::seed_from(seed ^ 0x0070_4a6e);
        let script: Vec<Vec<u64>> = (0..=steps)
            .map(|_| dist.sample_many(&mut trace_rng, 5))
            .collect();
        let (_, batches) = batches_from_script(2, rows, &script);
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        let model0 = Dlrm::new(DlrmConfig::tiny(2, rows, 4), &mut rng);
        let cfg = LazyDpConfig::new(
            DpConfig::new(0.8, 1.0, 0.05, 4).with_shards(shards),
            true,
        );

        // In-memory reference.
        let mut mem = model0.clone();
        let mut o_mem = LazyDpOptimizer::new(cfg.clone(), &mem, CounterNoise::new(seed));
        for i in 0..steps {
            o_mem.step(&mut mem, &batches[i], Some(&batches[i + 1]));
        }
        o_mem.finalize_model(&mut mem);

        // Paged backend over the same trace, seed, and config.
        let scfg = StorageConfig::new()
            .with_page_rows(page_rows)
            .with_cache_pages(cache_pages);
        let mut stored = model0
            .try_map_tables(|_, t| StoredTable::from_dense(&t, &scfg))
            .expect("spill dir must be writable");
        let mut o_st = LazyDpOptimizer::new(cfg, &stored, CounterNoise::new(seed));
        for i in 0..steps {
            o_st.step(&mut stored, &batches[i], Some(&batches[i + 1]));
        }
        o_st.finalize_model(&mut stored);

        for (t, (a, b)) in mem.tables.iter().zip(stored.tables.iter()).enumerate() {
            prop_assert!(
                b.max_abs_diff_dense(a) == 0.0,
                "table {t} diverged on the paged backend \
                 (page_rows {page_rows}, cache {cache_pages}, shards {shards})"
            );
        }
    }

    /// DP-AdaFEST's determinism contract: a full run — `step`s plus
    /// `finalize` — is **bitwise** invariant across the threads knob
    /// {1, 4}, the shards knob {1, 4}, and the storage backend
    /// (in-memory vs paged `StoredTable`), on random Zipf-skewed access
    /// traces. Selection and noise are addressed by (table, partition/
    /// row, iter), never by execution order.
    #[test]
    fn adafest_training_is_invariant_across_threads_shards_and_backends(
        exponent in 0.4f64..1.4,
        seed in 0u64..1000,
        partition_rows in 1usize..20,
    ) {
        use lazydp::data::AccessDistribution;
        use lazydp::dpsgd::{AdaFestConfig, AdaFestOptimizer};
        use lazydp::store::{StorageConfig, StoredTable};
        let rows = 48u64;
        let steps = 4usize;
        let dist = AccessDistribution::zipf(rows, exponent);
        let mut trace_rng = Xoshiro256PlusPlus::seed_from(seed ^ 0xada_fe57);
        let script: Vec<Vec<u64>> = (0..=steps)
            .map(|_| dist.sample_many(&mut trace_rng, 5))
            .collect();
        let (_, batches) = batches_from_script(2, rows, &script);
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        let model0 = Dlrm::new(DlrmConfig::tiny(2, rows, 4), &mut rng);
        let cfg_for = |threads: usize, shards: usize| AdaFestConfig::new(
            DpConfig::new(0.8, 1.0, 0.05, 4).with_threads(threads).with_shards(shards),
            1.0,
            1.5,
            partition_rows,
        );
        let run_mem = |threads: usize, shards: usize| -> Dlrm {
            let mut model = model0.clone();
            let mut opt = AdaFestOptimizer::new(cfg_for(threads, shards), CounterNoise::new(seed));
            for b in batches.iter().take(steps) {
                opt.step(&mut model, b, None);
            }
            opt.finalize(&mut model);
            model
        };
        let base = run_mem(1, 1);
        for (threads, shards) in [(4usize, 1usize), (1, 4), (4, 4)] {
            let m = run_mem(threads, shards);
            for (t, (a, b)) in base.tables.iter().zip(m.tables.iter()).enumerate() {
                prop_assert!(
                    a.max_abs_diff(b) == 0.0,
                    "table {t} changed at threads {threads} / shards {shards}"
                );
            }
            for (a, b) in base
                .top
                .layers()
                .iter()
                .zip(m.top.layers().iter())
                .chain(base.bottom.layers().iter().zip(m.bottom.layers().iter()))
            {
                prop_assert!(a.weight.max_abs_diff(&b.weight) == 0.0);
                prop_assert!(a.bias == b.bias);
            }
        }
        // Paged backend over the same trace, seed, and config.
        let scfg = StorageConfig::new().with_page_rows(3).with_cache_pages(2);
        let mut stored = model0
            .try_map_tables(|_, t| StoredTable::from_dense(&t, &scfg))
            .expect("spill dir must be writable");
        let mut opt = AdaFestOptimizer::new(cfg_for(4, 4), CounterNoise::new(seed));
        for b in batches.iter().take(steps) {
            opt.step(&mut stored, b, None);
        }
        opt.finalize(&mut stored);
        for (t, (a, b)) in base.tables.iter().zip(stored.tables.iter()).enumerate() {
            prop_assert!(
                b.max_abs_diff_dense(a) == 0.0,
                "table {t} diverged on the paged backend"
            );
        }
    }

    /// AdaFEST's partition selection is a pure function of
    /// (seed, table, iteration, counts): recomputing it — even from a
    /// noise source that has been used for arbitrary other draws —
    /// yields the identical mask.
    #[test]
    fn adafest_selection_is_a_pure_function_of_seed_and_batch(
        counts in proptest::collection::vec(0u64..50, 1..32),
        seed in 0u64..1000,
        table in 0u32..8,
        iter in 1u64..100,
        sigma_select in 0.2f64..4.0,
        threshold in -2.0f64..8.0,
    ) {
        use lazydp::dpsgd::adafest::select_partitions_into;
        let select = |noise: &mut CounterNoise| {
            let mut sel = Vec::new();
            select_partitions_into(
                table, &counts, sigma_select, threshold, noise, iter, &mut sel);
            sel
        };
        let fresh = select(&mut CounterNoise::new(seed));
        prop_assert_eq!(fresh.len(), counts.len());
        // Same seed, fresh source ⇒ same mask.
        prop_assert_eq!(&fresh, &select(&mut CounterNoise::new(seed)));
        // A source that already served other draws gives the same mask:
        // selection draws are addressed, not consumed from a stream.
        let mut used = CounterNoise::new(seed);
        let mut sink = vec![0.0f32; 16];
        use lazydp::rng::RowNoise;
        used.fill_unit(table, 7, iter, &mut sink);
        used.fill_unit_dense(3, iter, 2, &mut sink);
        prop_assert_eq!(&fresh, &select(&mut used));
    }

    /// Dedup: sorted unique output, duplicate count consistent.
    #[test]
    fn dedup_invariants(indices in proptest::collection::vec(0u64..30, 0..60)) {
        let (uniq, dups) = dedup_indices(&indices);
        prop_assert_eq!(uniq.len() + dups, indices.len());
        prop_assert!(uniq.windows(2).all(|w| w[0] < w[1]));
        let set: std::collections::HashSet<_> = indices.iter().collect();
        prop_assert_eq!(uniq.len(), set.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// VirtualTable is observationally equivalent to a dense
    /// EmbeddingTable under arbitrary interleavings of reads, writes,
    /// and sparse updates.
    #[test]
    fn virtual_table_equals_dense_table(
        ops in proptest::collection::vec(
            (0u64..50, -2.0f32..2.0, proptest::bool::ANY), 1..40),
    ) {
        use lazydp::embedding::{EmbeddingTable, VirtualTable};
        let rows = 50u64;
        let dim = 3usize;
        let mut virt = VirtualTable::new(rows, dim, 9);
        let mut dense: EmbeddingTable = virt.to_dense();
        for (row, delta, use_sparse) in ops {
            if use_sparse {
                let mut g = SparseGrad::new(dim);
                let e = g.push_zeros(row);
                e.fill(delta);
                virt.sparse_update(&g, 0.5);
                dense.sparse_update(&g, 0.5);
            } else {
                virt.row_mut(row)[1] += delta;
                dense.row_mut(row as usize)[1] += delta;
            }
            // Read-back equivalence on the touched row and a probe row.
            prop_assert_eq!(virt.read_row(row), dense.row(row as usize).to_vec());
            let probe = (row + 7) % rows;
            prop_assert_eq!(virt.read_row(probe), dense.row(probe as usize).to_vec());
        }
        // Full-table equivalence at the end.
        let materialized = virt.to_dense();
        prop_assert!(materialized.max_abs_diff(&dense) == 0.0);
    }

    /// Parallel noise fill is deterministic and independent of buffer
    /// slicing — chunk boundaries never duplicate or correlate values
    /// enough to shift the sample mean.
    #[test]
    fn parallel_fill_statistics(threads in 1usize..6, seed in 0u64..500) {
        use lazydp::rng::par_fill_standard_normal;
        let mut buf = vec![0.0f32; 8192];
        par_fill_standard_normal(seed, &mut buf, threads);
        let mean: f64 = buf.iter().map(|&x| f64::from(x)).sum::<f64>() / buf.len() as f64;
        prop_assert!(mean.abs() < 0.1, "mean {mean} (threads {threads})");
        let distinct: std::collections::HashSet<u32> =
            buf.iter().map(|x| x.to_bits()).collect();
        prop_assert!(distinct.len() > buf.len() / 2, "values must not repeat");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// V2 checkpoint robustness: flipping any single bit or truncating
    /// the byte stream at any point yields a typed error from
    /// [`Checkpoint::from_bytes`] — never a panic, never a silent load
    /// of torn state. (The payload checksum is verified *before* any
    /// length field is trusted, so corrupted lengths cannot drive
    /// allocation either.)
    #[test]
    fn checkpoint_rejects_any_bit_flip_or_truncation(
        pos_sel in 0.0f64..1.0,
        bit in 0u32..8,
        seed in 0u64..100,
    ) {
        use lazydp::lazy::Checkpoint;
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        let model = Dlrm::new(DlrmConfig::tiny(1, 8, 4), &mut rng);
        let opt = LazyDpOptimizer::new(
            LazyDpConfig::new(DpConfig::new(0.8, 1.0, 0.05, 4), false),
            &model,
            CounterNoise::new(seed),
        );
        let bytes = Checkpoint::capture(&model, &opt).to_bytes();
        prop_assert!(Checkpoint::from_bytes(&bytes).is_ok(), "intact bytes must load");

        let pos = ((pos_sel * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut flipped = bytes.clone();
        flipped[pos] ^= 1u8 << bit;
        prop_assert!(
            Checkpoint::from_bytes(&flipped).is_err(),
            "bit {bit} of byte {pos} flipped: load must fail typed"
        );
        prop_assert!(
            Checkpoint::from_bytes(&bytes[..pos]).is_err(),
            "truncation to {pos} bytes: load must fail typed"
        );
    }

    /// Corrupting the newest on-disk checkpoint at any byte makes
    /// `resume_latest` fall back to the previous last-good manifest
    /// entry instead of erroring or loading torn state.
    #[test]
    fn resume_latest_falls_back_when_the_newest_checkpoint_is_corrupted(
        pos_sel in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        use lazydp::lazy::{Checkpoint, CheckpointStore};
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "lazydp-prop-fallback-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let mut model = Dlrm::new(DlrmConfig::tiny(1, 8, 4), &mut rng);
        let mut opt = LazyDpOptimizer::new(
            LazyDpConfig::new(DpConfig::new(0.8, 1.0, 0.05, 4), false),
            &model,
            CounterNoise::new(5),
        );
        let mut store = CheckpointStore::open(&dir).expect("open");
        let empty = MiniBatch::default();
        let mut newest = std::path::PathBuf::new();
        for _ in 0..2 {
            opt.step(&mut model, &empty, Some(&empty));
            newest = store
                .save(&Checkpoint::capture(&model, &opt))
                .expect("save");
        }

        // Flip one bit of the newest published checkpoint on disk.
        let mut bytes = std::fs::read(&newest).expect("read newest");
        let pos = ((pos_sel * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1u8 << bit;
        std::fs::write(&newest, &bytes).expect("write corruption");

        let reopened = CheckpointStore::open(&dir).expect("reopen");
        let resumed = reopened
            .resume_latest()
            .expect("fallback, not error")
            .expect("the previous entry is still good");
        prop_assert_eq!(resumed.iteration, 1, "must fall back to iteration 1");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
