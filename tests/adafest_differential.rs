//! Differential test pinning DP-AdaFEST to the eager DP-SGD baseline.
//!
//! With the selection threshold forced to `-∞` every partition is
//! selected, so AdaFEST's partition-restricted noisy update degenerates
//! to the dense noisy update — the released model must be **bitwise
//! identical** to eager DP-SGD(F) under the same seed. This pins the
//! whole AdaFEST step (ghost clipping, 1/B scaling, coalesce, MLP noise
//! order, per-row noise addressing, update arithmetic) to the baseline:
//! any drift in any of those stages shows up here as a non-zero diff.

use lazydp::data::{SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{AdaFestConfig, AdaFestOptimizer, ClipStyle, DpConfig, EagerDpSgd, Optimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

fn setup(tables: usize, rows: u64, samples: usize) -> (Dlrm, SyntheticDataset) {
    let mut rng = Xoshiro256PlusPlus::seed_from(41);
    let model = Dlrm::new(DlrmConfig::tiny(tables, rows, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(tables, rows, samples));
    (model, ds)
}

fn assert_bitwise_equal(a: &Dlrm, b: &Dlrm, what: &str) {
    for (i, (x, y)) in a.tables.iter().zip(b.tables.iter()).enumerate() {
        assert_eq!(x.max_abs_diff(y), 0.0, "{what}: table {i} diverged");
    }
    for (mlp_a, mlp_b) in [(&a.bottom, &b.bottom), (&a.top, &b.top)] {
        for (l, (la, lb)) in mlp_a.layers().iter().zip(mlp_b.layers().iter()).enumerate() {
            assert_eq!(
                la.weight.max_abs_diff(&lb.weight),
                0.0,
                "{what}: MLP layer {l} weights diverged"
            );
            assert_eq!(la.bias, lb.bias, "{what}: MLP layer {l} bias diverged");
        }
    }
}

#[test]
fn select_all_adafest_is_bitwise_identical_to_eager_dense_dp_sgd() {
    let (model0, ds) = setup(3, 64, 128);
    let dp = DpConfig::new(1.1, 1.0, 0.05, 16).with_threads(1);
    // Sweep partition sizes: the partition geometry must not matter
    // when every partition is selected.
    for partition_rows in [1usize, 7, 16, 64, 1000] {
        let mut eager_model = model0.clone();
        let mut ada_model = model0.clone();
        let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(33));
        let mut ada = AdaFestOptimizer::new(
            AdaFestConfig::new(dp, 1.0, 1.0, partition_rows).select_all(),
            CounterNoise::new(33),
        );
        for it in 0..6 {
            let ids: Vec<usize> = (0..16).map(|k| (it * 16 + k) % 128).collect();
            let batch = ds.batch_of(&ids);
            let se = eager.step(&mut eager_model, &batch, None);
            let sa = ada.step(&mut ada_model, &batch, None);
            assert_eq!(se.realized_batch, sa.realized_batch);
            assert_eq!(
                se.clipped_fraction, sa.clipped_fraction,
                "clipped fractions diverged at iter {it}"
            );
        }
        // Neither algorithm defers noise, so the in-place models are
        // already the released models.
        eager.finalize(&mut eager_model);
        ada.finalize(&mut ada_model);
        assert_bitwise_equal(
            &eager_model,
            &ada_model,
            &format!("partition_rows={partition_rows}"),
        );
    }
}

#[test]
fn select_all_differential_holds_with_multiple_tables_and_pooling() {
    // >1 table and pooling > 1: the count query's ℓ₂ sensitivity is
    // Δ = 2·√3 > 1, so the realized selection noise is scaled up by Δ —
    // which must not disturb the select-all degenerate case (selection
    // draws live on their own parameter base and the mask is all-true
    // at τ = −∞ regardless of the noise scale).
    let mut rng = Xoshiro256PlusPlus::seed_from(41);
    let model0 = Dlrm::new(DlrmConfig::tiny(3, 64, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, 96).with_pooling(2));
    let dp = DpConfig::new(1.1, 1.0, 0.05, 16).with_threads(1);
    let mut eager_model = model0.clone();
    let mut ada_model = model0;
    let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(9));
    let mut ada = AdaFestOptimizer::new(
        AdaFestConfig::new(dp, 1.0, 1.0, 16)
            .with_max_lookups(2)
            .select_all(),
        CounterNoise::new(9),
    );
    for it in 0..5 {
        let batch = ds.batch_of(&(it * 16..(it + 1) * 16).collect::<Vec<_>>());
        eager.step(&mut eager_model, &batch, None);
        ada.step(&mut ada_model, &batch, None);
    }
    assert_bitwise_equal(&eager_model, &ada_model, "tables=3, pooling=2");
}

#[test]
fn select_all_differential_holds_through_empty_batches() {
    // Poisson sampling deals empty batches; both algorithms must stay
    // in lockstep through them (noisy zero-gradient release).
    let (model0, ds) = setup(2, 48, 64);
    let dp = DpConfig::new(0.9, 0.8, 0.05, 8).with_threads(1);
    let mut eager_model = model0.clone();
    let mut ada_model = model0;
    let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(5));
    let mut ada = AdaFestOptimizer::new(
        AdaFestConfig::new(dp, 1.0, 1.0, 16).select_all(),
        CounterNoise::new(5),
    );
    let empty = lazydp::data::MiniBatch::default();
    for it in 0..5 {
        if it % 2 == 0 {
            eager.step(&mut eager_model, &empty, None);
            ada.step(&mut ada_model, &empty, None);
        } else {
            let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
            eager.step(&mut eager_model, &batch, None);
            ada.step(&mut ada_model, &batch, None);
        }
    }
    assert_bitwise_equal(&eager_model, &ada_model, "with empty batches");
}

#[test]
fn finite_threshold_diverges_from_eager_but_only_on_unselected_partitions() {
    // Sanity check that the differential test has teeth: with a real
    // threshold the models must NOT be identical (some partitions are
    // dropped), yet rows in always-selected partitions still match.
    let (model0, ds) = setup(1, 64, 64);
    let dp = DpConfig::new(1.1, 1.0, 0.05, 8).with_threads(1);
    let mut eager_model = model0.clone();
    let mut ada_model = model0;
    let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(13));
    // τ high enough that cold partitions drop out.
    let mut ada = AdaFestOptimizer::new(AdaFestConfig::new(dp, 1.0, 3.0, 8), CounterNoise::new(13));
    // A skewed batch: only samples hitting a narrow row range.
    let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
    eager.step(&mut eager_model, &batch, None);
    ada.step(&mut ada_model, &batch, None);
    let diff: f32 = eager_model.tables[0].max_abs_diff(&ada_model.tables[0]);
    assert!(
        diff > 0.0,
        "a finite threshold must drop some partitions (else the test is vacuous)"
    );
}
