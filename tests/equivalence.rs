//! Cross-crate equivalence tests: the mathematical claims that make
//! LazyDP "mathematically equivalent, differentially private" (paper
//! abstract), exercised through the public facade API.

use lazydp::data::{
    FixedBatchLoader, LookaheadLoader, MiniBatch, SyntheticConfig, SyntheticDataset,
};
use lazydp::dpsgd::{ClipStyle, DpConfig, EagerDpSgd, EanaOptimizer, Optimizer};
use lazydp::lazy::{LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

const TABLES: usize = 4;
const ROWS: u64 = 96;
const DIM: usize = 8;
const BATCH: usize = 24;
const STEPS: usize = 8;

fn setup() -> (Dlrm, Vec<MiniBatch>) {
    let mut rng = Xoshiro256PlusPlus::seed_from(321);
    let model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, BATCH * (STEPS + 1)));
    let batches = (0..=STEPS)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    (model, batches)
}

fn max_model_diff(a: &Dlrm, b: &Dlrm) -> f32 {
    let table_diff = a
        .tables
        .iter()
        .zip(b.tables.iter())
        .map(|(x, y)| x.max_abs_diff(y))
        .fold(0.0f32, f32::max);
    let mlp_diff = a
        .top
        .layers()
        .iter()
        .zip(b.top.layers().iter())
        .chain(a.bottom.layers().iter().zip(b.bottom.layers().iter()))
        .map(|(x, y)| x.weight.max_abs_diff(&y.weight))
        .fold(0.0f32, f32::max);
    table_diff.max(mlp_diff)
}

/// The paper's central claim, end to end through the facade: LazyDP
/// (without ANS, counter noise) trains the *same model* as eager
/// DP-SGD(F).
#[test]
fn lazydp_equals_eager_dpsgd_full_pipeline() {
    let (model0, batches) = setup();
    let dp = DpConfig::new(0.9, 1.0, 0.05, BATCH);

    let mut eager_model = model0.clone();
    let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(2718));
    for b in batches.iter().take(STEPS) {
        eager.step(&mut eager_model, b, None);
    }

    let mut lazy_model = model0;
    let mut lazy = LazyDpOptimizer::new(
        LazyDpConfig::new(dp, false),
        &lazy_model,
        CounterNoise::new(2718),
    );
    for i in 0..STEPS {
        lazy.step(&mut lazy_model, &batches[i], Some(&batches[i + 1]));
    }
    lazy.finalize_model(&mut lazy_model);

    let d = max_model_diff(&eager_model, &lazy_model);
    assert!(d < 2e-3, "LazyDP diverged from eager DP-SGD by {d}");
}

/// All three eager variants coincide (B ≡ R ≡ F), via the facade.
#[test]
fn all_eager_variants_coincide() {
    let (model0, batches) = setup();
    let dp = DpConfig::new(0.7, 0.8, 0.05, BATCH);
    let mut finals = Vec::new();
    for style in [
        ClipStyle::PerExample,
        ClipStyle::Reweighted,
        ClipStyle::Fast,
    ] {
        let mut m = model0.clone();
        let mut opt = EagerDpSgd::new(dp, style, CounterNoise::new(5));
        for b in batches.iter().take(4) {
            opt.step(&mut m, b, None);
        }
        finals.push(m);
    }
    assert!(max_model_diff(&finals[0], &finals[1]) < 1e-3, "B vs R");
    assert!(max_model_diff(&finals[1], &finals[2]) < 1e-3, "R vs F");
}

/// EANA differs from DP-SGD exactly on the never-accessed rows (the
/// §2.5 information leak), and nowhere else at access time.
#[test]
fn eana_leak_signature() {
    let (model0, batches) = setup();
    let dp = DpConfig::paper_default(BATCH);
    let mut eana_model = model0.clone();
    let mut eana = EanaOptimizer::new(dp, CounterNoise::new(31));
    let mut dp_model = model0.clone();
    let mut dpf = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(31));
    eana.step(&mut eana_model, &batches[0], None);
    dpf.step(&mut dp_model, &batches[0], None);

    let accessed: std::collections::HashSet<u64> =
        batches[0].table_indices(0).iter().copied().collect();
    let mut untouched_differ = 0;
    for r in 0..ROWS as usize {
        let e = eana_model.tables[0].row(r);
        let d = dp_model.tables[0].row(r);
        let same = e.iter().zip(d.iter()).all(|(a, b)| (a - b).abs() < 1e-7);
        if accessed.contains(&(r as u64)) {
            assert!(same, "accessed row {r} must match across EANA/DP-SGD");
        } else {
            // EANA left it at init; DP-SGD noised it.
            let init = model0.tables[0].row(r);
            assert_eq!(e, init, "EANA must not touch row {r}");
            if !same {
                untouched_differ += 1;
            }
        }
    }
    assert!(
        untouched_differ > 0,
        "DP-SGD must have noised untouched rows"
    );
}

/// The LookaheadLoader driving a LazyDP run sees each batch exactly once
/// and in order, so lazy and eager runs consume identical data.
#[test]
fn lookahead_pipeline_preserves_batch_stream() {
    let ds = SyntheticDataset::new(SyntheticConfig::small(2, 64, 64));
    let mut plain = FixedBatchLoader::new(ds.clone(), 16);
    let mut look = LookaheadLoader::new(FixedBatchLoader::new(ds, 16));
    use lazydp::data::BatchSource;
    for i in 0..6 {
        let expect = plain.next_batch();
        let (cur, _next) = look.advance();
        assert_eq!(cur, &expect, "batch {i}");
        let _ = look.finish_iteration();
    }
}

/// ANS on/off changes *when and how* noise is sampled but not the
/// distribution of the released model: both runs' per-coordinate
/// displacements on a pure-noise workload pass a KS test against the
/// same theoretical normal.
#[test]
fn ans_toggle_is_distributionally_invisible() {
    let mut rng = Xoshiro256PlusPlus::seed_from(77);
    let model0 = Dlrm::new(DlrmConfig::tiny(1, 600, 8), &mut rng);
    let dp = DpConfig::new(1.0, 1.0, 0.1, 8);
    let steps = 7u64;
    let empty = MiniBatch::default();
    let run = |ans: bool, seed: u64| -> Vec<f64> {
        let mut m = model0.clone();
        let mut opt = LazyDpOptimizer::new(LazyDpConfig::new(dp, ans), &m, CounterNoise::new(seed));
        for _ in 0..steps {
            opt.step(&mut m, &empty, Some(&empty));
        }
        opt.finalize_model(&mut m);
        m.tables[0]
            .as_slice()
            .iter()
            .zip(model0.tables[0].as_slice())
            .map(|(a, b)| f64::from(a - b))
            .collect()
    };
    let expect_std = f64::from(dp.lr) * f64::from(dp.noise_std_per_coord()) * (steps as f64).sqrt();
    for (ans, seed) in [(true, 1u64), (false, 2u64)] {
        let mut d = run(ans, seed);
        let ks = lazydp::rng::stats::ks_statistic_normal(&mut d, 0.0, expect_std);
        let crit = lazydp::rng::stats::ks_critical(d.len(), 0.001);
        assert!(ks < crit, "ans={ans}: KS {ks} vs {crit}");
    }
}
