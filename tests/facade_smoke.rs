//! Workspace-wiring smoke test: asserts that the `lazydp` facade's
//! re-exports resolve and are usable, so a broken crate edge or renamed
//! module fails here with a clear message rather than deep inside an
//! integration test.

use lazydp::dpsgd::{ClipStyle, DpConfig, EagerDpSgd};
use lazydp::lazy::{LazyDpConfig, PrivateTrainer};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;
use lazydp::tensor::Matrix;

#[test]
fn facade_reexports_resolve_and_construct() {
    // tensor
    let m = Matrix::zeros(2, 3);
    assert_eq!((m.rows(), m.cols()), (2, 3));

    // dpsgd: the eager baseline optimizer behind `lazydp::dpsgd`.
    let dp = DpConfig::new(1.0, 1.0, 0.05, 4);
    let _eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(1));

    // lazy (lazydp_core): the paper's Fig. 9 wrapper end to end.
    let mut rng = Xoshiro256PlusPlus::seed_from(1);
    let model = lazydp::model::Dlrm::new(lazydp::model::DlrmConfig::tiny(2, 64, 8), &mut rng);
    let ds = lazydp::data::SyntheticDataset::new(lazydp::data::SyntheticConfig::small(2, 64, 256));
    let loader = lazydp::data::FixedBatchLoader::new(ds, 32);
    let cfg = LazyDpConfig::paper_default(32);
    let mut trainer =
        PrivateTrainer::make_private(model, cfg, loader, CounterNoise::new(7), 32.0 / 256.0);
    trainer.train_steps(2);
    let (eps, _order) = trainer.epsilon(1e-6);
    assert!(eps > 0.0, "privacy accountant must report spent budget");
    let _final_model = trainer.finish();
}

#[test]
fn facade_module_names_match_design_doc() {
    // Every facade module named in DESIGN.md's paper-to-crate table.
    let _ = lazydp::tensor::Matrix::zeros(1, 1);
    let _ = lazydp::rng::Xoshiro256PlusPlus::seed_from(0);
    let _ = lazydp::privacy::PrivacyEngine::new(lazydp::privacy::PrivacyBudget::new(1.0, 1e-6));
    let _ = lazydp::embedding::SparseGrad::new(1);
    let _ = lazydp::data::SyntheticConfig::small(1, 4, 8);
    let _ = lazydp::model::DlrmConfig::tiny(1, 4, 4);
    let _ = lazydp::dpsgd::DpConfig::new(1.0, 1.0, 0.1, 1);
    let _ = lazydp::sysmodel::SystemSpec::paper_default();
    let _ = lazydp::lazy::HistoryTable::new(1);
}
