//! Shared steady-state allocation harness for the per-algorithm
//! zero-alloc tests (`alloc_steady_state*.rs`).
//!
//! Each integration-test binary that includes this module gets a
//! counting global allocator: warm-up iterations size every reusable
//! buffer uncounted, then the same work runs again with counting
//! enabled and [`assert_steady_state_zero_alloc`] asserts not a single
//! byte was requested. Each file must hold exactly one `#[test]` so no
//! concurrent test thread can pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation (and
/// reallocation) that happens while `ENABLED` is set.
struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static BYTES: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

fn record(size: usize) {
    if ENABLED.load(Ordering::Relaxed) {
        BYTES.fetch_add(size as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `step(i)` for `warmup` uncounted iterations (sizing every
/// scratch buffer), then for `counted` more with the counting allocator
/// armed, and asserts the counted phase allocated **zero** bytes.
/// Finishes with a probe allocation proving the counter itself works.
///
/// Also forces the sequential, inline-executor path
/// (`lazydp::exec::set_global_threads(1)`) regardless of the CI
/// matrix's `LAZYDP_THREADS` leg: the zero-allocation contract is for
/// the single-width executor (scoped worker threads are born and die
/// per parallel region, so any multi-thread run allocates thread state
/// by construction).
/// Also pins `lazydp::obs` to counters mode regardless of the CI
/// matrix's `LAZYDP_OBS` leg: the zero-allocation contract explicitly
/// *includes* live metric counters (they are plain atomics), while
/// trace mode buffers span events and is exempt by design.
pub fn assert_steady_state_zero_alloc(
    algo: &str,
    warmup: usize,
    counted: usize,
    mut step: impl FnMut(usize),
) {
    lazydp::exec::set_global_threads(1);
    lazydp::obs::set_mode(lazydp::obs::ObsMode::Counters);

    for i in 0..warmup {
        step(i);
    }

    BYTES.store(0, Ordering::SeqCst);
    CALLS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    for i in warmup..warmup + counted {
        step(i);
    }
    ENABLED.store(false, Ordering::SeqCst);

    let bytes = BYTES.load(Ordering::SeqCst);
    let calls = CALLS.load(Ordering::SeqCst);
    assert_eq!(
        bytes, 0,
        "steady-state {algo} steps must not allocate: \
         {bytes} bytes over {calls} allocations"
    );

    // Sanity: the counter itself works (a fresh Vec must register).
    ENABLED.store(true, Ordering::SeqCst);
    let probe: Vec<u8> = Vec::with_capacity(4096);
    ENABLED.store(false, Ordering::SeqCst);
    drop(probe);
    assert!(
        BYTES.load(Ordering::SeqCst) >= 4096,
        "counting allocator must observe allocations"
    );
}
