//! Steady-state allocation accounting for the LazyDP training step.
//!
//! The scratch-arena refactor's contract: once the first steps have
//! sized every reusable buffer, `LazyDpOptimizer::step` on the
//! sequential path (single-width executor, unsharded history, in-memory
//! tables) performs **zero heap allocations**. This test pins that with
//! a counting global allocator: warm-up steps size the arena, then the
//! same batch cycle runs again with counting enabled and the test
//! asserts not a single byte was requested.
//!
//! Since the fused ghost-clipping backward landed,
//! `LazyDpOptimizer::step` runs `Dlrm::backward_clipped_with` (ghost
//! norms + clip + clipped aggregate in one chain), so the zero-byte
//! assertion below covers the fused path — including its cached-`dz`
//! buffers, which the scratch sizes during warm-up like everything
//! else. (The macro-tiled GEMM driver may allocate per-tile panels,
//! but it only engages on multi-thread executors; this test pins the
//! sequential path.)
//!
//! The file holds exactly one `#[test]` so no concurrent test thread
//! can pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{DpConfig, Optimizer};
use lazydp::lazy::{LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

/// Forwards to the system allocator, counting every allocation (and
/// reallocation) that happens while `ENABLED` is set.
struct CountingAlloc;

static ENABLED: AtomicBool = AtomicBool::new(false);
static BYTES: AtomicU64 = AtomicU64::new(0);
static CALLS: AtomicU64 = AtomicU64::new(0);

fn record(size: usize) {
    if ENABLED.load(Ordering::Relaxed) {
        BYTES.fetch_add(size as u64, Ordering::Relaxed);
        CALLS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_lazydp_step_allocates_zero_bytes() {
    // Force the sequential, inline-executor path regardless of the CI
    // matrix's LAZYDP_THREADS leg: the zero-allocation contract is for
    // the single-width executor (scoped worker threads are born and die
    // per parallel region, so any multi-thread run allocates thread
    // state by construction).
    lazydp::exec::set_global_threads(1);

    let mut rng = Xoshiro256PlusPlus::seed_from(17);
    let model_cfg = DlrmConfig::tiny(3, 64, 8);
    let mut model = Dlrm::new(model_cfg, &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, 128));
    let batch_size = 16usize;
    let batches: Vec<MiniBatch> = (0..4)
        .map(|i| ds.batch_of(&(i * batch_size..(i + 1) * batch_size).collect::<Vec<_>>()))
        .collect();

    let cfg = LazyDpConfig::new(
        DpConfig::new(0.8, 1.0, 0.05, batch_size).with_threads(1),
        true,
    );
    let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(23));

    // Warm-up: size every arena buffer over the full batch cycle.
    for i in 0..8 {
        let cur = &batches[i % batches.len()];
        let next = &batches[(i + 1) % batches.len()];
        opt.step(&mut model, cur, Some(next));
    }

    // Steady state: the same cycle again, counted.
    BYTES.store(0, Ordering::SeqCst);
    CALLS.store(0, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
    for i in 8..12 {
        let cur = &batches[i % batches.len()];
        let next = &batches[(i + 1) % batches.len()];
        opt.step(&mut model, cur, Some(next));
    }
    ENABLED.store(false, Ordering::SeqCst);

    let bytes = BYTES.load(Ordering::SeqCst);
    let calls = CALLS.load(Ordering::SeqCst);
    assert_eq!(
        bytes, 0,
        "steady-state LazyDP steps must not allocate: {bytes} bytes over {calls} allocations"
    );

    // Sanity: the counter itself works (a fresh Vec must register).
    ENABLED.store(true, Ordering::SeqCst);
    let probe: Vec<u8> = Vec::with_capacity(4096);
    ENABLED.store(false, Ordering::SeqCst);
    drop(probe);
    assert!(
        BYTES.load(Ordering::SeqCst) >= 4096,
        "counting allocator must observe allocations"
    );
}
