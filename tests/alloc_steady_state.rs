//! Steady-state allocation accounting for the LazyDP training step.
//!
//! The scratch-arena refactor's contract: once the first steps have
//! sized every reusable buffer, `LazyDpOptimizer::step` on the
//! sequential path (single-width executor, unsharded history, in-memory
//! tables) performs **zero heap allocations**. The shared harness in
//! `alloc_common` pins that with a counting global allocator; sibling
//! files (`alloc_steady_state_eager.rs`, `_eana.rs`, `_adafest.rs`) pin
//! the same contract for the other algorithms.
//!
//! Since the fused ghost-clipping backward landed,
//! `LazyDpOptimizer::step` runs `Dlrm::backward_clipped_with` (ghost
//! norms + clip + clipped aggregate in one chain), so the zero-byte
//! assertion below covers the fused path — including its cached-`dz`
//! buffers, which the scratch sizes during warm-up like everything
//! else. (The macro-tiled GEMM driver may allocate per-tile panels,
//! but it only engages on multi-thread executors; this test pins the
//! sequential path.)

mod alloc_common;

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{DpConfig, Optimizer};
use lazydp::lazy::{LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

#[test]
fn steady_state_lazydp_step_allocates_zero_bytes() {
    let mut rng = Xoshiro256PlusPlus::seed_from(17);
    let model_cfg = DlrmConfig::tiny(3, 64, 8);
    let mut model = Dlrm::new(model_cfg, &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, 128));
    let batch_size = 16usize;
    let batches: Vec<MiniBatch> = (0..4)
        .map(|i| ds.batch_of(&(i * batch_size..(i + 1) * batch_size).collect::<Vec<_>>()))
        .collect();

    let cfg = LazyDpConfig::new(
        DpConfig::new(0.8, 1.0, 0.05, batch_size).with_threads(1),
        true,
    );
    let mut opt = LazyDpOptimizer::new(cfg, &model, CounterNoise::new(23));

    alloc_common::assert_steady_state_zero_alloc("LazyDP", 8, 4, |i| {
        let cur = &batches[i % batches.len()];
        let next = &batches[(i + 1) % batches.len()];
        opt.step(&mut model, cur, Some(next));
    });
}
