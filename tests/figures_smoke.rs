//! Smoke tests for the figure-regeneration harness: every experiment
//! runs, renders, and reproduces the paper's key quantitative shapes.

use lazydp_bench::{all_experiments, experiment_ids, full_report, run_experiment};

#[test]
fn every_registered_experiment_runs_and_renders() {
    let ids = experiment_ids();
    assert!(ids.len() >= 14, "all paper artifacts registered");
    for (id, _) in &ids {
        let t = run_experiment(id).unwrap_or_else(|| panic!("runner missing for {id}"));
        assert_eq!(&t.id, id);
        assert!(!t.rows.is_empty(), "{id} produced no rows");
        assert!(!t.markdown().is_empty());
        assert!(!t.csv().is_empty());
    }
}

#[test]
fn full_report_covers_every_figure() {
    let report = full_report();
    for needle in [
        "fig3", "fig5", "fig6", "fig10", "fig11", "fig12", "fig13a", "fig13b", "fig13c", "fig13d",
        "fig14", "e12", "e13", "xval",
    ] {
        assert!(report.contains(needle), "report missing {needle}");
    }
    assert!(report.contains("LazyDP"));
    assert!(report.contains("DP-SGD(F)"));
    assert!(report.len() > 5000, "report suspiciously short");
}

fn cell(table_id: &str, row_pred: impl Fn(&[String]) -> bool, col: usize) -> String {
    let t = run_experiment(table_id).expect("experiment exists");
    t.rows
        .iter()
        .find(|r| row_pred(r))
        .unwrap_or_else(|| panic!("row not found in {table_id}"))[col]
        .clone()
}

#[test]
fn headline_numbers_in_paper_bands() {
    // Fig. 10: DP-SGD(F) ≈ 259× SGD at batch 2048.
    let f: f64 = cell("fig10", |r| r[0] == "DP-SGD(F)" && r[1] == "2048", 2)
        .parse()
        .expect("numeric");
    assert!((200.0..330.0).contains(&f), "DP-SGD(F) {f}");
    // Fig. 10: LazyDP ≈ 2.2×.
    let l: f64 = cell("fig10", |r| r[0] == "LazyDP" && r[1] == "2048", 2)
        .parse()
        .expect("numeric");
    assert!((1.5..3.2).contains(&l), "LazyDP {l}");
    // e12: InputQueue 213 KB exactly.
    let q = cell("e12", |r| r[0].starts_with("InputQueue"), 1);
    assert_eq!(q, "213 KB");
    // e12: HistoryTable ≈ 751 MB.
    let h = cell("e12", |r| r[0] == "HistoryTable", 1);
    assert_eq!(h, "751 MB");
    // fig13a: OOM at 192 GB for DP-SGD(F) only.
    let oom = cell("fig13a", |r| r[0] == "192 GB", 3);
    assert_eq!(oom, "OOM");
}

#[test]
fn fig6_identifies_both_kernels() {
    let t = run_experiment("fig6").expect("exists");
    let sampling = t.rows.iter().find(|r| r[0] == "101").expect("N=101 row");
    assert_eq!(sampling[2], "compute-bound");
    let g: f64 = sampling[1].parse().expect("numeric");
    assert!(
        (205.0..225.0).contains(&g),
        "N=101 at {g} GFLOPS (paper: 215)"
    );
    let update = t.rows.iter().find(|r| r[0] == "2").expect("N=2 row");
    assert_eq!(update[2], "memory-bound");
}

#[test]
fn all_experiments_complete_quickly_enough_for_ci() {
    let start = std::time::Instant::now();
    let tables = all_experiments();
    assert_eq!(tables.len(), experiment_ids().len());
    // Generous bound; mostly guards against accidental O(table_rows)
    // functional work sneaking into the model-scale paths.
    assert!(
        start.elapsed().as_secs() < 120,
        "experiments took {:?}",
        start.elapsed()
    );
}
