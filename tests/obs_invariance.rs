//! Observability must be *observation only*: the released model is
//! bitwise identical whether `LAZYDP_OBS` is off, counters, or trace.
//!
//! This is the determinism half of the `lazydp_obs` contract (the
//! privacy half is lint rule P1 at metric/span call sites): metrics are
//! relaxed atomics and spans only read the wall clock, so no mode may
//! influence a single weight. The sweep covers both instrumented
//! training algorithms end to end — LazyDP (overlap path + finalize)
//! and DP-AdaFEST (private partition selection) — plus the trainer-level
//! accounting calls.
//!
//! One `#[test]` only: the obs mode is process-global, so a concurrent
//! test sweeping it would race.

use lazydp::data::{FixedBatchLoader, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{AdaFestConfig, DpConfig};
use lazydp::lazy::{LazyDpConfig, PrivateTrainer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::obs::ObsMode;
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

const STEPS: usize = 8;
const BATCH: usize = 16;

fn setup() -> (Dlrm, SyntheticDataset) {
    let mut rng = Xoshiro256PlusPlus::seed_from(67);
    let model = Dlrm::new(DlrmConfig::tiny(3, 64, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, BATCH * (STEPS + 2)));
    (model, ds)
}

fn lazydp_run(model: &Dlrm, ds: &SyntheticDataset) -> Dlrm {
    let q = BATCH as f64 / ds.len() as f64;
    // threads=2 + shards=2 exercises the overlap worker and the
    // shard-parallel flush under every obs mode.
    let cfg = LazyDpConfig::new(DpConfig::paper_default(BATCH), true)
        .with_threads(2)
        .with_shards(2);
    let mut trainer = PrivateTrainer::make_private_prefetch(
        model.clone(),
        cfg,
        FixedBatchLoader::new(ds.clone(), BATCH),
        CounterNoise::new(11),
        q,
    );
    let _ = trainer.train_steps(STEPS);
    let _ = trainer.epsilon(1e-6);
    trainer.finish()
}

fn adafest_run(model: &Dlrm, ds: &SyntheticDataset) -> Dlrm {
    let q = BATCH as f64 / ds.len() as f64;
    let cfg = AdaFestConfig::new(DpConfig::paper_default(BATCH), 1.0, 2.0, 16);
    let mut trainer = PrivateTrainer::make_private_adafest(
        model.clone(),
        cfg,
        FixedBatchLoader::new(ds.clone(), BATCH),
        CounterNoise::new(11),
        q,
    );
    let _ = trainer.train_steps(STEPS);
    trainer.finish()
}

fn assert_identical(kind: &str, mode: ObsMode, a: &Dlrm, b: &Dlrm) {
    for (t, (x, y)) in a.tables.iter().zip(b.tables.iter()).enumerate() {
        assert_eq!(
            x.max_abs_diff(y),
            0.0,
            "{kind} table {t} changed under {mode:?}"
        );
    }
    for l in 0..a.top.layers().len() {
        assert_eq!(
            a.top.layers()[l]
                .weight
                .max_abs_diff(&b.top.layers()[l].weight),
            0.0,
            "{kind} top MLP layer {l} changed under {mode:?}"
        );
    }
}

#[test]
fn released_models_are_bitwise_identical_across_obs_modes() {
    let (model, ds) = setup();

    lazydp::obs::set_mode(ObsMode::Off);
    let lazy_ref = lazydp_run(&model, &ds);
    let ada_ref = adafest_run(&model, &ds);

    for mode in [ObsMode::Counters, ObsMode::Trace] {
        lazydp::obs::set_mode(mode);
        assert_identical("LazyDP", mode, &lazy_ref, &lazydp_run(&model, &ds));
        assert_identical("AdaFEST", mode, &ada_ref, &adafest_run(&model, &ds));
    }

    // While we hold trace mode: the spans recorded above must export as
    // well-formed chrome://tracing JSON (consumed by the CI trace leg).
    let events = lazydp::obs::trace::take_trace_events();
    assert!(
        !events.is_empty(),
        "trace mode must have recorded step-phase spans"
    );
    assert!(
        events.iter().any(|e| e.name == "step.forward"),
        "forward span missing from trace"
    );
    lazydp::obs::set_mode(ObsMode::Counters);
}
