//! Steady-state allocation accounting for DP-AdaFEST.
//!
//! The `AdaFestScratch` contract: with a single noise thread and
//! in-memory tables, an `AdaFestOptimizer::step` — ghost clipping,
//! partition counting, private selection, and the partition-restricted
//! noisy update — allocates **zero** heap bytes once warm-up has sized
//! the scratch. The per-table `ShardSpec` is a plain value and the
//! count/selection masks live in reusable buffers. See `alloc_common`
//! for the harness; this file holds exactly one test so no concurrent
//! thread pollutes the counters.

mod alloc_common;

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{AdaFestConfig, AdaFestOptimizer, DpConfig, Optimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

#[test]
fn steady_state_adafest_step_allocates_zero_bytes() {
    let mut rng = Xoshiro256PlusPlus::seed_from(43);
    let mut model = Dlrm::new(DlrmConfig::tiny(3, 64, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, 128));
    let batch_size = 16usize;
    let batches: Vec<MiniBatch> = (0..4)
        .map(|i| ds.batch_of(&(i * batch_size..(i + 1) * batch_size).collect::<Vec<_>>()))
        .collect();

    let cfg = AdaFestConfig::new(
        DpConfig::new(0.8, 1.0, 0.05, batch_size).with_threads(1),
        1.0,
        1.5,
        8,
    );
    let mut opt = AdaFestOptimizer::new(cfg, CounterNoise::new(47));

    alloc_common::assert_steady_state_zero_alloc("DP-AdaFEST", 8, 4, |i| {
        opt.step(&mut model, &batches[i % batches.len()], None);
    });
}
