//! Steady-state allocation accounting for eager DP-SGD(F).
//!
//! The `EagerScratch` refactor's contract: with the ghost-clipping
//! (`Fast`) style, a single noise thread, and in-memory tables, an
//! `EagerDpSgd::step` allocates **zero** heap bytes once warm-up has
//! sized the scratch — the dense noisy update draws into a reusable
//! buffer via `dense_noisy_update_with`. (The (B) and (R) styles
//! materialize per-example state and are exempt by design.) See
//! `alloc_common` for the harness; this file holds exactly one test so
//! no concurrent thread pollutes the counters.

mod alloc_common;

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{ClipStyle, DpConfig, EagerDpSgd, Optimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

#[test]
fn steady_state_eager_fast_step_allocates_zero_bytes() {
    let mut rng = Xoshiro256PlusPlus::seed_from(29);
    let mut model = Dlrm::new(DlrmConfig::tiny(3, 64, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, 128));
    let batch_size = 16usize;
    let batches: Vec<MiniBatch> = (0..4)
        .map(|i| ds.batch_of(&(i * batch_size..(i + 1) * batch_size).collect::<Vec<_>>()))
        .collect();

    let cfg = DpConfig::new(0.8, 1.0, 0.05, batch_size).with_threads(1);
    let mut opt = EagerDpSgd::new(cfg, ClipStyle::Fast, CounterNoise::new(31));

    alloc_common::assert_steady_state_zero_alloc("eager DP-SGD(F)", 8, 4, |i| {
        opt.step(&mut model, &batches[i % batches.len()], None);
    });
}
