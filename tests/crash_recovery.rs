//! Kill-and-resume recovery harness: the capstone proof that training
//! is crash-consistent.
//!
//! Each case trains a tiny DLRM with a checkpoint saved after every
//! step, installs a deterministic [`FaultPlan`] that kills the process
//! (in-process stand-in: a panic with an [`InjectedKill`] payload) at
//! one of the three most state-torn instants —
//!
//! * **mid-step** — the dense half of an optimizer step has landed, the
//!   sparse half has not;
//! * **mid-flush** — the lazy-noise flush for the next batch's rows is
//!   partially applied (fires on the overlap worker thread, so this
//!   also proves the panic payload survives the join);
//! * **mid-checkpoint** — the checkpoint file is written and synced but
//!   not yet atomically renamed into place;
//!
//! — then catches the kill, reopens the [`CheckpointStore`], resumes
//! from the last-good manifest entry, replays to the end, and asserts
//! the released model is **bitwise identical** to an uninterrupted run.
//! The grid covers threads {1,4} × shards {1,4} × {in-memory,
//! disk-backed} embedding storage, all against one single-thread
//! in-memory reference.
//!
//! A final case injects *corruption* instead of a kill and asserts the
//! torn page is detected by its checksum at fault-in rather than
//! silently trained on.

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{DpConfig, Optimizer};
use lazydp::fault::{self, FaultKind, FaultPlan, InjectedKill, Site};
use lazydp::lazy::{Checkpoint, CheckpointStore, LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;
use lazydp::store::{StorageConfig, StoredTable};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Once;

const TABLES: usize = 2;
const ROWS: u64 = 64;
const DIM: usize = 8;
const BATCH: usize = 16;
const STEPS: usize = 6;
const NOISE_SEED: u64 = 9;
/// The optimizer's iteration counter is 1-based; killing iteration 4
/// leaves checkpoints for iterations 1..=3 on disk.
const KILL_ITER: u64 = 4;

fn setup() -> (Dlrm, Vec<MiniBatch>) {
    let mut rng = Xoshiro256PlusPlus::seed_from(321);
    let model = Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(TABLES, ROWS, BATCH * (STEPS + 1)));
    let batches = (0..=STEPS)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    (model, batches)
}

fn cfg(threads: usize, shards: usize) -> LazyDpConfig {
    LazyDpConfig::new(DpConfig::new(0.9, 1.0, 0.05, BATCH), false)
        .with_threads(threads)
        .with_shards(shards)
}

fn spill_cfg() -> StorageConfig {
    // 8-row pages, 4-page cache: the 64-row tables genuinely page.
    StorageConfig::new().with_page_rows(8).with_cache_pages(4)
}

/// A fresh, empty checkpoint directory unique to this process + tag.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("lazydp-crash-harness-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Silences the default panic hook for [`InjectedKill`] payloads so the
/// harness's expected kills don't spray backtraces over the test output.
fn quiet_injected_kills() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedKill>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Bitwise equality of two released models, including MLP biases.
fn assert_bitwise(reference: &Dlrm, got: &Dlrm, label: &str) {
    for (t, (a, b)) in reference.tables.iter().zip(got.tables.iter()).enumerate() {
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "{label}: table {t} differs from the uninterrupted run"
        );
    }
    for (i, (a, b)) in reference
        .bottom
        .layers()
        .iter()
        .chain(reference.top.layers())
        .zip(got.bottom.layers().iter().chain(got.top.layers()))
        .enumerate()
    {
        assert_eq!(
            a.weight.as_slice(),
            b.weight.as_slice(),
            "{label}: MLP layer {i} weights differ"
        );
        assert_eq!(a.bias, b.bias, "{label}: MLP layer {i} biases differ");
    }
}

/// The uninterrupted single-thread in-memory run every recovered run
/// must reproduce bit for bit.
fn reference_model(model0: &Dlrm, batches: &[MiniBatch]) -> Dlrm {
    let mut m = model0.clone();
    let mut o = LazyDpOptimizer::new(cfg(1, 1), &m, CounterNoise::new(NOISE_SEED));
    for i in 0..STEPS {
        o.step(&mut m, &batches[i], Some(&batches[i + 1]));
    }
    o.finalize_model(&mut m);
    m
}

/// Runs training-with-checkpointing until the installed plan kills it,
/// asserts the kill fired at the expected site, clears the plan, resumes
/// from the last-good manifest entry, replays to the end, and returns
/// the released (dense) model.
///
/// `stored` routes the embedding tables through the disk-paged backend
/// on both the killed attempt and the resumed run.
fn kill_and_resume(
    site: Site,
    threads: usize,
    shards: usize,
    stored: bool,
    model0: &Dlrm,
    batches: &[MiniBatch],
) -> Dlrm {
    quiet_injected_kills();
    let tag = format!(
        "{}-t{threads}-s{shards}-{}",
        site.name().replace('.', "-"),
        if stored { "disk" } else { "mem" }
    );
    let dir = fresh_dir(&tag);
    let cfg = cfg(threads, shards);

    // MidCheckpoint ordinals count saves (0-based): ordinal KILL_ITER-1
    // is the save *after* step KILL_ITER, so in every case the newest
    // surviving manifest entry is iteration KILL_ITER-1.
    let ordinal = match site {
        Site::MidCheckpoint => KILL_ITER - 1,
        _ => KILL_ITER,
    };
    fault::install(FaultPlan::new(1).rule(site, ordinal, FaultKind::Kill));

    // --- the doomed attempt ---------------------------------------------
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let mut store = CheckpointStore::open(&dir).expect("open checkpoint dir");
        if stored {
            let storage = spill_cfg();
            let mut m = model0
                .clone()
                .try_map_tables(|_, t| StoredTable::from_dense(&t, &storage))
                .expect("spill tables");
            let mut o = LazyDpOptimizer::new(cfg.clone(), &m, CounterNoise::new(NOISE_SEED));
            for i in 0..STEPS {
                o.step(&mut m, &batches[i], Some(&batches[i + 1]));
                store.save(&Checkpoint::capture(&m, &o)).expect("save");
            }
        } else {
            let mut m = model0.clone();
            let mut o = LazyDpOptimizer::new(cfg.clone(), &m, CounterNoise::new(NOISE_SEED));
            for i in 0..STEPS {
                o.step(&mut m, &batches[i], Some(&batches[i + 1]));
                store.save(&Checkpoint::capture(&m, &o)).expect("save");
            }
        }
    }));
    fault::clear();
    let payload = attempt.expect_err("the fault plan must kill the run");
    let kill = payload
        .downcast_ref::<InjectedKill>()
        .unwrap_or_else(|| panic!("{tag}: panic payload was not the injected kill"));
    assert_eq!(kill.site, site, "{tag}: killed at the wrong site");

    // --- recovery: reopen, sweep, resume from last-good, replay ----------
    let store = CheckpointStore::open(&dir).expect("reopen checkpoint dir");
    let _ = store.sweep_stale().expect("sweep");
    let ckpt = store
        .resume_latest()
        .expect("resume must not error")
        .expect("at least one checkpoint was published before the kill");
    assert_eq!(
        ckpt.iteration,
        KILL_ITER - 1,
        "{tag}: resumed from the wrong checkpoint"
    );

    let released = if stored {
        let storage = spill_cfg();
        let (mut m, mut o) = ckpt
            .restore_stored(cfg, CounterNoise::new(NOISE_SEED), Some(&storage))
            .expect("restore onto disk-backed tables");
        for i in o.iteration() as usize..STEPS {
            o.step(&mut m, &batches[i], Some(&batches[i + 1]));
        }
        o.finalize_model(&mut m);
        m.map_tables(|_, t| t.to_dense())
    } else {
        let (mut m, mut o) = ckpt.restore(cfg, CounterNoise::new(NOISE_SEED));
        for i in o.iteration() as usize..STEPS {
            o.step(&mut m, &batches[i], Some(&batches[i + 1]));
        }
        o.finalize_model(&mut m);
        m
    };
    let _ = std::fs::remove_dir_all(&dir);
    released
}

/// The full grid for one kill site.
fn grid(site: Site) {
    let _serial = fault::exclusive();
    let (model0, batches) = setup();
    let reference = reference_model(&model0, &batches);
    for threads in [1usize, 4] {
        for shards in [1usize, 4] {
            // The mid-flush point lives on the sharded overlap path,
            // which a 1-thread 1-shard run never takes (it flushes
            // inline with the gather) — there is no flush to tear.
            if site == Site::MidFlush && threads == 1 && shards == 1 {
                continue;
            }
            for stored in [false, true] {
                let released = kill_and_resume(site, threads, shards, stored, &model0, &batches);
                assert_bitwise(
                    &reference,
                    &released,
                    &format!("{site} kill, threads={threads} shards={shards} stored={stored}"),
                );
            }
        }
    }
}

#[test]
fn kill_mid_step_resumes_bitwise_across_the_grid() {
    grid(Site::MidStep);
}

#[test]
fn kill_mid_flush_resumes_bitwise_across_the_grid() {
    grid(Site::MidFlush);
}

#[test]
fn kill_mid_checkpoint_resumes_bitwise_across_the_grid() {
    grid(Site::MidCheckpoint);
}

/// A kill between checkpoint sync and rename leaves a `*.tmp` orphan;
/// `sweep_stale` collects it and the manifest never points at it.
#[test]
fn mid_checkpoint_kill_leaves_no_stale_files_after_sweep() {
    let _serial = fault::exclusive();
    quiet_injected_kills();
    let (model0, batches) = setup();
    let dir = fresh_dir("sweep-check");
    fault::install(FaultPlan::new(1).rule(Site::MidCheckpoint, 1, FaultKind::Kill));
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let mut store = CheckpointStore::open(&dir).expect("open");
        let mut m = model0.clone();
        let mut o = LazyDpOptimizer::new(cfg(1, 1), &m, CounterNoise::new(NOISE_SEED));
        for i in 0..3 {
            o.step(&mut m, &batches[i], Some(&batches[i + 1]));
            store.save(&Checkpoint::capture(&m, &o)).expect("save");
        }
    }));
    fault::clear();
    assert!(attempt.is_err(), "second save must die pre-rename");

    let orphans = |dir: &PathBuf| {
        std::fs::read_dir(dir)
            .expect("read ckpt dir")
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .count()
    };
    assert_eq!(orphans(&dir), 1, "the killed save leaves its tmp behind");
    let store = CheckpointStore::open(&dir).expect("reopen");
    store.sweep_stale().expect("sweep");
    assert_eq!(orphans(&dir), 0, "sweep must collect the orphan");
    assert_eq!(
        store.iterations(),
        vec![1],
        "manifest holds only the published save"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected page corruption is caught by the per-page checksum at
/// fault-in — training panics with a corruption report instead of
/// silently continuing on torn weights.
#[test]
fn injected_page_corruption_is_detected_not_trained_on() {
    let _serial = fault::exclusive();
    let (model0, batches) = setup();
    // Corrupt the 5th page write-back; some later fault-in of that page
    // must detect it. (Corruption is not retryable and not degradable —
    // the only safe response is to stop.)
    fault::install(FaultPlan::new(1).rule(Site::PageWrite, 4, FaultKind::Corrupt));
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        let storage = spill_cfg();
        let mut m = model0
            .clone()
            .try_map_tables(|_, t| StoredTable::from_dense(&t, &storage))
            .expect("spill tables");
        let mut o = LazyDpOptimizer::new(cfg(1, 1), &m, CounterNoise::new(NOISE_SEED));
        for i in 0..STEPS {
            o.step(&mut m, &batches[i], Some(&batches[i + 1]));
        }
        o.finalize_model(&mut m);
        m.map_tables(|_, t| t.to_dense())
    }));
    fault::clear();
    let payload = attempt.expect_err("corrupted page must abort training");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("checksum mismatch"),
        "the abort must name the checksum failure, got: {msg}"
    );
}
